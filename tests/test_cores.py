"""Unit tests for the fat/lean core timing models."""

import math

import pytest

from repro.simulator.cores import (
    CLIENT_QUANTUM_EVENTS,
    FatCore,
    LeanCore,
    _Context,
    fat_core_params,
    lean_core_params,
)
from repro.simulator.hierarchy import HierarchyParams, SharedL2Hierarchy
from repro.simulator.trace import (
    FLAG_DEPENDENT,
    FLAG_STREAM,
    FLAG_WRITE,
    TraceBuilder,
)


def make_trace(events, name="t", ilp=2.0, ilp_inorder=1.0):
    tb = TraceBuilder(name, ilp=ilp, branch_mpki=0.0, ilp_inorder=ilp_inorder)
    rid = tb.register_code("mod", 0x10_0000, 4)
    for icount, addr, flags in events:
        tb.event(icount, addr, flags, rid)
    return tb.build()


def make_hier(n_cores=1, l2_latency=20, mem_latency=300):
    return SharedL2Hierarchy(HierarchyParams(
        n_cores=n_cores, l2_mb=1.0, l2_nominal_mb=1.0,
        l2_latency=l2_latency, mem_latency=mem_latency,
    ))


def run_fat(events, steps=None, **tr_kw):
    trace = make_trace(events, **tr_kw)
    core = FatCore(0, fat_core_params(), make_hier(), [trace])
    steps = len(events) if steps is None else steps
    for _ in range(steps):
        core.step()
    return core


class TestFatCore:
    def test_compute_accumulates_at_effective_rate(self):
        core = run_fat([(40, 0x100, 0)] * 4, ilp=2.0)
        # 4 blocks of 40 instructions at rate min(4, 2.0) = 2.0.
        assert core.breakdown.computation == pytest.approx(80.0)
        assert core.retired == 160

    def test_dependent_miss_exposes_latency(self):
        # Two accesses to distinct cold lines: both L2 misses -> memory.
        dep = run_fat([(40, 0x100, FLAG_DEPENDENT),
                       (40, 0x40_0000, FLAG_DEPENDENT)])
        indep = run_fat([(40, 0x100, 0), (40, 0x40_0000, 0)])
        assert dep.breakdown.d_stalls > indep.breakdown.d_stalls

    def test_l1_hits_expose_nothing(self):
        core = run_fat([(40, 0x100, FLAG_DEPENDENT)] * 10)
        # After the first touch the line stays in L1.
        first_only = core.breakdown.d_stalls
        core2 = run_fat([(40, 0x100, FLAG_DEPENDENT)])
        assert first_only == pytest.approx(core2.breakdown.d_stalls)

    def test_store_buffer_absorbs_write_latency(self):
        write = run_fat([(40, 0x40_0000, FLAG_WRITE)])
        read = run_fat([(40, 0x40_0000, FLAG_DEPENDENT)])
        assert write.breakdown.d_stalls < read.breakdown.d_stalls / 4

    def test_stream_softens_dependent_memory_miss(self):
        plain = run_fat([(40, 0x40_0000, FLAG_DEPENDENT)])
        stream = run_fat([(40, 0x40_0000, FLAG_DEPENDENT | FLAG_STREAM)])
        assert stream.breakdown.d_stalls < plain.breakdown.d_stalls

    def test_stream_does_not_soften_l2_hits(self):
        """The STREAM flag targets off-chip latency only (>=100 cycles)."""
        hier = make_hier()
        # Warm the line into L2 (not L1) via another core? single core:
        # touch once (goes to L2+L1), evict from L1 by filling the set.
        trace = make_trace(
            [(10, 0x40_0000, FLAG_DEPENDENT | FLAG_STREAM)])
        core = FatCore(0, fat_core_params(), hier, [trace])
        hier.l2.access(0x40_0000 >> 6, False)  # L2-resident, L1-cold
        core.step()
        # L2 hit at 20 cycles: full dependent exposure (20 - dep_hide).
        assert core.breakdown.d_l2 == pytest.approx(
            20 - fat_core_params().dep_hide_cycles, abs=3)

    def test_branch_mpki_feeds_other(self):
        tb = TraceBuilder("t", ilp=2.0, branch_mpki=10.0)
        rid = tb.register_code("m", 0x10_0000, 4)
        tb.event(1000, 0x100, 0, rid)
        core = FatCore(0, fat_core_params(), make_hier(), [tb.build()])
        core.step()
        expected = 1000 * 10.0 / 1000.0 * fat_core_params().branch_penalty
        assert core.breakdown.other == pytest.approx(expected)

    def test_response_pass_target(self):
        trace = make_trace([(10, 0x100, 0)] * 5)
        core = FatCore(0, fat_core_params(), make_hier(), [trace])
        core.pass_target = 1
        while core.ctx.finished_at is math.inf:
            core.step()
        assert core.retired == 50
        assert core.next_time() is math.inf  # idle afterwards

    def test_idle_core_has_no_events(self):
        core = FatCore(0, fat_core_params(), make_hier(), [])
        assert core.next_time() is math.inf
        core.step()  # no-op
        assert core.retired == 0


class TestLeanCore:
    def params(self):
        return lean_core_params()

    def test_single_context_exposes_full_latency(self):
        trace = make_trace([(20, 0x40_0000, FLAG_DEPENDENT)], ilp_inorder=1.0)
        core = LeanCore(0, self.params(), make_hier(), [[trace]])
        for _ in range(4):
            core.step()
        # Memory latency fully exposed as a data stall.
        assert core.breakdown.d_mem > 250

    def test_multithreading_hides_stalls(self):
        """Four contexts with interleaved misses: core-level stall time is
        far below the single-context case."""
        def traces(n):
            return [
                [make_trace([(60, 0x40_0000 + 0x1_0000 * (c * 37 + i), 0)
                             for i in range(30)], name=f"c{c}",
                            ilp_inorder=1.0)]
                for c in range(n)
            ]

        solo = LeanCore(0, self.params(), make_hier(), traces(1))
        quad = LeanCore(0, self.params(), make_hier(), traces(4))
        for core in (solo, quad):
            for _ in range(200):
                core.step()
        solo_frac = solo.breakdown.d_stalls / max(1e-9, solo.breakdown.busy)
        quad_frac = quad.breakdown.d_stalls / max(1e-9, quad.breakdown.busy)
        assert quad_frac < solo_frac * 0.65

    def test_processor_sharing_conserves_issue_bandwidth(self):
        """Two compute-only contexts retire at the same aggregate rate as
        one (they share the core's issue slots)."""
        ev = [(100, 0x100, 0)] * 10
        horizon = 3000.0
        rates = {}
        for label, n in (("solo", 1), ("duo", 2)):
            ctx_traces = [
                [make_trace(ev, name=f"{label}{i}", ilp_inorder=1.0)]
                for i in range(n)
            ]
            core = LeanCore(0, self.params(), make_hier(), ctx_traces)
            while core.t < horizon:
                core.step()
            rates[label] = core.retired / core.t
        assert rates["duo"] == pytest.approx(rates["solo"], rel=0.1)

    def test_breakdown_conserves_elapsed_time(self):
        trace = make_trace(
            [(30, 0x40_0000 + i * 4096, FLAG_DEPENDENT if i % 2 else 0)
             for i in range(50)], ilp_inorder=1.0)
        core = LeanCore(0, self.params(), make_hier(), [[trace]])
        for _ in range(300):
            core.step()
        bd = core.breakdown
        assert bd.total == pytest.approx(core.t, rel=1e-6)

    def test_hit_under_miss_reduces_independent_exposure(self):
        hier = make_hier()
        hier.l2.access(0x40_0000 >> 6, False)
        dep_tr = make_trace([(20, 0x40_0000, FLAG_DEPENDENT)],
                            ilp_inorder=1.0)
        core = LeanCore(0, self.params(), hier, [[dep_tr]])
        for _ in range(4):
            core.step()
        dep_stall = core.breakdown.d_l2

        hier2 = make_hier()
        hier2.l2.access(0x40_0000 >> 6, False)
        ind_tr = make_trace([(20, 0x40_0000, 0)], ilp_inorder=1.0)
        core2 = LeanCore(0, self.params(), hier2, [[ind_tr]])
        for _ in range(4):
            core2.step()
        assert core2.breakdown.d_l2 < dep_stall


class TestContextRotation:
    def test_quantum_rotates_clients(self):
        t1 = make_trace([(1, 0x100, 0)] * 10, name="a")
        t2 = make_trace([(1, 0x200, 0)] * 10, name="b")
        ctx = _Context([t1, t2], fat_core_params(), quantum=4)
        seen = []
        for _ in range(12):
            _, addr, _, _ = ctx.advance()
            seen.append(addr)
        # First 4 from trace a, next 4 from trace b, then a again.
        assert seen[:4] == [0x100] * 4
        assert seen[4:8] == [0x200] * 4
        assert seen[8:12] == [0x100] * 4

    def test_rotation_resumes_position(self):
        t1 = make_trace([(i + 1, 0x100, 0) for i in range(10)], name="a")
        t2 = make_trace([(100, 0x200, 0)] * 10, name="b")
        ctx = _Context([t1, t2], fat_core_params(), quantum=3)
        icounts = [ctx.advance()[0] for _ in range(9)]
        # a: 1,2,3  b: 100,100,100  a resumes: 4,5,6
        assert icounts == [1, 2, 3, 100, 100, 100, 4, 5, 6]

    def test_wrap_counts_pass_and_restarts_at_offset(self):
        t1 = make_trace([(i, 0x100, 0) for i in range(1, 7)], name="a")
        ctx = _Context([t1], fat_core_params(), offsets=[2],
                       quantum=CLIENT_QUANTUM_EVENTS)
        icounts = [ctx.advance()[0] for _ in range(6)]
        # Starts at offset 2 (icount 3) through end, then wraps to offset.
        assert icounts == [3, 4, 5, 6, 3, 4]
        assert ctx.passes == 1
