"""Unit tests for the MESI private-L2 SMP hierarchy."""

import pytest

from repro.simulator.coherence import (
    EXCLUSIVE,
    MODIFIED,
    SHARED,
    PrivateL2Hierarchy,
)
from repro.simulator.hierarchy import COH, L1, L2, MEM, HierarchyParams


def make_smp(n=4, l2_kb=256):
    params = HierarchyParams(
        n_cores=n,
        l1d_kb=16,
        l2_mb=l2_kb / 1024,
        l2_nominal_mb=4.0,
        l2_latency=12,
    )
    return PrivateL2Hierarchy(params)


ADDR = 0x4000_0000


class TestReadPath:
    def test_cold_read_goes_to_memory_exclusive(self):
        h = make_smp()
        lat, level = h.data_access(0, ADDR, False, 0)
        assert level == MEM
        assert h.l2_caches[0].lookup(ADDR >> 6) == EXCLUSIVE

    def test_second_read_same_node_hits_l1(self):
        h = make_smp()
        h.data_access(0, ADDR, False, 0)
        lat, level = h.data_access(0, ADDR, False, 0)
        assert level == L1

    def test_clean_remote_copy_read_from_memory_shared(self):
        h = make_smp()
        h.data_access(0, ADDR, False, 0)
        lat, level = h.data_access(1, ADDR, False, 0)
        assert level == MEM
        assert h.l2_caches[1].lookup(ADDR >> 6) == SHARED
        mask, owner = h.directory_state(ADDR)
        assert mask == 0b11 and owner is None

    def test_dirty_remote_read_is_coherence_transfer(self):
        h = make_smp()
        h.data_access(0, ADDR, True, 0)  # node 0 owns M
        lat, level = h.data_access(1, ADDR, False, 0)
        assert level == COH
        assert lat == h.params.coherence_latency
        # Owner downgraded to SHARED; requester has SHARED.
        assert h.l2_caches[0].lookup(ADDR >> 6) == SHARED
        assert h.l2_caches[1].lookup(ADDR >> 6) == SHARED
        _, owner = h.directory_state(ADDR)
        assert owner is None


class TestWritePath:
    def test_cold_write_installs_modified(self):
        h = make_smp()
        lat, level = h.data_access(0, ADDR, True, 0)
        assert level == MEM
        assert h.l2_caches[0].lookup(ADDR >> 6) == MODIFIED
        _, owner = h.directory_state(ADDR)
        assert owner == 0

    def test_write_to_shared_upgrades_and_invalidates(self):
        h = make_smp()
        h.data_access(0, ADDR, False, 0)
        h.data_access(1, ADDR, False, 0)  # both SHARED
        lat, level = h.data_access(0, ADDR, True, 0)
        assert level == COH
        assert lat == h.params.upgrade_latency
        assert h.l2_caches[0].lookup(ADDR >> 6) == MODIFIED
        assert h.l2_caches[1].lookup(ADDR >> 6) is None
        mask, owner = h.directory_state(ADDR)
        assert mask == 0b1 and owner == 0

    def test_write_to_dirty_remote_transfers_and_invalidates(self):
        h = make_smp()
        h.data_access(0, ADDR, True, 0)
        lat, level = h.data_access(1, ADDR, True, 0)
        assert level == COH
        assert lat == h.params.coherence_latency
        assert h.l2_caches[0].lookup(ADDR >> 6) is None
        assert h.l2_caches[1].lookup(ADDR >> 6) == MODIFIED
        mask, owner = h.directory_state(ADDR)
        assert mask == 0b10 and owner == 1

    def test_exclusive_silent_upgrade_on_l1_write_hit(self):
        h = make_smp()
        h.data_access(0, ADDR, False, 0)  # E in node 0, also in L1
        lat, level = h.data_access(0, ADDR, True, 0)  # L1 write hit
        assert level == L1
        assert h.l2_caches[0].lookup(ADDR >> 6) == MODIFIED

    def test_writes_count_coherence_misses(self):
        h = make_smp()
        h.data_access(0, ADDR, True, 0)
        h.data_access(1, ADDR, True, 0)
        assert h.stats.coherence_misses == 1


class TestPingPong:
    def test_alternating_writers_always_pay_coherence(self):
        h = make_smp()
        h.data_access(0, ADDR, True, 0)
        levels = []
        for i in range(1, 9):
            node = i % 2
            _, level = h.data_access(node, ADDR, True, 0)
            levels.append(level)
        assert all(lv == COH for lv in levels)

    def test_read_sharing_is_cheap_after_first_transfer(self):
        h = make_smp()
        h.data_access(0, ADDR, True, 0)
        h.data_access(1, ADDR, False, 0)  # COH transfer, both now S
        _, level0 = h.data_access(0, ADDR, False, 0)
        _, level1 = h.data_access(1, ADDR, False, 0)
        assert level0 == L1 and level1 == L1


class TestDirectoryConsistency:
    def test_eviction_clears_directory(self):
        h = make_smp(l2_kb=16)  # tiny L2 to force evictions
        l2 = h.l2_caches[0]
        capacity = l2.n_sets * l2.assoc
        for i in range(capacity * 3):
            h.data_access(0, ADDR + i * 64 * l2.n_sets, False, 0)
        # Every directory entry for node 0 must correspond to a resident line.
        for line, mask in list(h._sharers.items()):
            if mask & 1:
                assert l2.lookup(line) is not None

    def test_l2_hit_after_l1_eviction(self):
        h = make_smp()
        h.data_access(0, ADDR, False, 0)
        l1 = h.l1d_caches[0]
        l1.invalidate(ADDR >> 6)
        lat, level = h.data_access(0, ADDR, False, 0)
        assert level == L2
        assert lat == h.l2_latency

    def test_invariant_single_owner(self):
        h = make_smp()
        import random

        rng = random.Random(7)
        lines = [ADDR + i * 64 for i in range(32)]
        for _ in range(2000):
            node = rng.randrange(4)
            addr = rng.choice(lines)
            h.data_access(node, addr, rng.random() < 0.4, 0)
        for line, owner in h._owner.items():
            assert h.l2_caches[owner].lookup(line) == MODIFIED
            # No other node may hold a copy of a modified line.
            mask = h._sharers.get(line, 0)
            assert mask == (1 << owner)
