"""Unit tests for the trace format and builders."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.trace import (
    FLAG_DEPENDENT,
    FLAG_STREAM,
    FLAG_WRITE,
    Trace,
    TraceBuilder,
    Workload,
)


def build_trace(events, **kw):
    tb = TraceBuilder("t", **kw)
    rid = tb.register_code("mod", 0x1000, 8)
    for icount, addr, flags in events:
        tb.event(icount, addr, flags, rid)
    return tb.build()


class TestBuilder:
    def test_basic_roundtrip(self):
        tr = build_trace([(10, 0x100, 0), (20, 0x200, FLAG_WRITE)])
        assert len(tr) == 2
        assert list(tr.icounts) == [10, 20]
        assert list(tr.addrs) == [0x100, 0x200]
        assert tr.total_instructions == 30
        assert tr.total_references == 2

    def test_empty_trace_builds_cleanly(self):
        # Zero-length traces are legal (a client that did no work): they
        # carry no events, replay as a no-op, and every aggregate is zero.
        tr = TraceBuilder("t").build()
        assert len(tr) == 0
        assert tr.total_instructions == 0
        assert tr.total_references == 0
        assert tr.dependent_fraction() == 0.0
        assert tr.write_fraction() == 0.0
        assert tr.distinct_lines() == 0
        assert list(tr.accesses()) == []
        assert len(tr.sliced(0, 0)) == 0

    def test_per_event_accessors(self):
        tr = build_trace([(10, 0x100, 0), (20, 0x240, FLAG_WRITE)])
        assert tr.icount_at(1) == 20
        assert tr.addr_at(1) == 0x240
        assert tr.flags_at(1) == FLAG_WRITE
        assert tr.region_at(1) == tr.region_at(0)
        assert tr.access_at(0) == (10, 0x100, 0, tr.region_at(0))
        assert list(tr.accesses()) == [tr.access_at(0), tr.access_at(1)]

    def test_sliced_view_matches_naive_slice(self):
        events = [(i + 1, 0x100 + 64 * i, i % 4) for i in range(10)]
        tr = build_trace(events)
        view = tr.sliced(3, 8)
        assert list(view.accesses()) == list(tr.accesses())[3:8]
        assert view.footprints is tr.footprints
        assert (view.ilp, view.ilp_inorder, view.branch_mpki) == \
            (tr.ilp, tr.ilp_inorder, tr.branch_mpki)

    def test_negative_icount_rejected(self):
        tb = TraceBuilder("t")
        with pytest.raises(ValueError):
            tb.event(-1, 0x100)

    def test_register_code_deduplicates(self):
        tb = TraceBuilder("t")
        a = tb.register_code("m", 0x1000, 4)
        b = tb.register_code("m", 0x1000, 4)
        c = tb.register_code("n", 0x2000, 4)
        assert a == b and c != a

    def test_flag_fractions(self):
        tr = build_trace([
            (1, 0x100, FLAG_WRITE),
            (1, 0x200, FLAG_DEPENDENT),
            (1, 0x300, FLAG_DEPENDENT | FLAG_WRITE),
            (1, 0x400, 0),
        ])
        assert tr.write_fraction() == 0.5
        assert tr.dependent_fraction() == 0.5

    def test_distinct_lines(self):
        tr = build_trace([(1, 0, 0), (1, 63, 0), (1, 64, 0), (1, 128, 0)])
        assert tr.distinct_lines() == 3

    def test_ilp_inorder_defaults(self):
        tr = build_trace([(1, 0, 0)], ilp=2.0)
        assert tr.ilp_inorder == pytest.approx(1.5)
        tr2 = build_trace([(1, 0, 0)], ilp=2.0, ilp_inorder=1.1)
        assert tr2.ilp_inorder == 1.1

    def test_stream_flag_stored(self):
        tr = build_trace([(1, 0x100, FLAG_STREAM)])
        assert tr.flags[0] & FLAG_STREAM

    def test_icount_clamped_to_storage(self):
        tr = build_trace([(2**40, 0x100, 0)])
        assert tr.icounts[0] == 0xFFFF_FFFF


class TestWorkload:
    def test_requires_traces(self):
        with pytest.raises(ValueError):
            Workload("w", [])

    def test_counts(self):
        t1 = build_trace([(5, 0, 0)])
        t2 = build_trace([(7, 0, 0), (3, 64, 0)])
        wl = Workload("w", [t1, t2])
        assert wl.n_clients == 2
        assert wl.total_instructions() == 15


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 10_000),
              st.integers(0, 2**40),
              st.integers(0, 0x1F)),
    min_size=1, max_size=200,
))
def test_trace_roundtrip_property(events):
    """Property: every event survives the builder byte-for-byte."""
    tr = build_trace(events)
    assert list(tr.icounts) == [min(e[0], 0xFFFF_FFFF) for e in events]
    assert list(tr.addrs) == [e[1] for e in events]
    assert list(tr.flags) == [e[2] for e in events]
    assert tr.total_instructions == sum(e[0] for e in events)
