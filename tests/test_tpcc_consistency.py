"""TPC-C consistency conditions over the workload's transaction logic.

The TPC-C specification defines cross-table consistency conditions that
must hold after any mix of transactions; checking them here validates that
our transaction implementations maintain real database semantics (not just
plausible traces).
"""

import random

import pytest

from repro.workloads.tpcc import TpccDatabase

SCALE = 0.05


@pytest.fixture(scope="module")
def ran_tpcc():
    """A database that has executed a real multi-client mix."""
    tpcc = TpccDatabase(scale=SCALE, seed=31)
    for client in range(4):
        tpcc.run_client(client, 25)
    return tpcc


def district_orders(tpcc, w, d):
    return [
        (rid, row) for rid, row in tpcc.orders.scan()
        if row[1] == w and row[2] == d
    ]


class TestConsistency:
    def test_next_o_id_matches_order_count(self, ran_tpcc):
        """Condition 1-ish: d_next_o_id - 1 equals the orders inserted for
        that district (order ids are dense from 1)."""
        tpcc = ran_tpcc
        for w in range(tpcc.cfg.warehouses):
            for d in range(tpcc.cfg.districts_per_wh):
                next_o = tpcc.district.get(tpcc.district_rid(w, d))[2]
                n_orders = len(district_orders(tpcc, w, d))
                assert next_o - 1 == n_orders

    def test_order_ids_dense_and_unique(self, ran_tpcc):
        tpcc = ran_tpcc
        for w in range(tpcc.cfg.warehouses):
            for d in range(tpcc.cfg.districts_per_wh):
                ids = sorted(row[0] for _, row in district_orders(tpcc, w, d))
                assert ids == list(range(1, len(ids) + 1))

    def test_order_line_counts_match_headers(self, ran_tpcc):
        """Condition 3-ish: every order has exactly o_ol_cnt order lines."""
        tpcc = ran_tpcc
        from collections import Counter
        lines_per_order = Counter()
        for _, ol in tpcc.order_line.scan():
            lines_per_order[(ol[1], ol[2], ol[0])] += 1
        for _, o in tpcc.orders.scan():
            key = (o[1], o[2], o[0])
            assert lines_per_order[key] == o[6]

    def test_warehouse_ytd_equals_district_ytd_sum(self, ran_tpcc):
        """Condition 2-ish: payments bump W_YTD and the district D_YTD by
        the same amounts, so the deltas must agree per warehouse."""
        tpcc = ran_tpcc
        init_w = 300_000.0
        init_d = 30_000.0
        for w in range(tpcc.cfg.warehouses):
            w_delta = tpcc.warehouse.get(w)[1] - init_w
            d_delta = sum(
                tpcc.district.get(tpcc.district_rid(w, d))[3] - init_d
                for d in range(tpcc.cfg.districts_per_wh)
            )
            assert w_delta == pytest.approx(d_delta)

    def test_history_rows_match_payment_count(self, ran_tpcc):
        """Every payment inserts exactly one history row, and payment
        amounts flow into warehouse YTD."""
        tpcc = ran_tpcc
        total_paid = sum(row[3] for _, row in tpcc.history.scan())
        ytd_delta = sum(
            tpcc.warehouse.get(w)[1] - 300_000.0
            for w in range(tpcc.cfg.warehouses)
        )
        assert total_paid == pytest.approx(ytd_delta)

    def test_new_order_queue_subset_of_orders(self, ran_tpcc):
        """Every queued new-order key references an existing order that is
        still undelivered (carrier unset)."""
        tpcc = ran_tpcc
        for (w, d, o_id), norid in tpcc.new_order_idx.items():
            found = tpcc.orders_idx.search((w, d, o_id))
            assert found is not None
            assert tpcc.orders.get(found)[5] == -1  # no carrier yet

    def test_delivered_orders_left_the_queue(self, ran_tpcc):
        tpcc = ran_tpcc
        queued = {k for k, _ in tpcc.new_order_idx.items()}
        for _, o in tpcc.orders.scan():
            if o[5] != -1:  # delivered
                assert (o[1], o[2], o[0]) not in queued

    def test_stock_quantity_domain(self, ran_tpcc):
        """Stock quantities stay in TPC-C's wrapped domain (> 0 always,
        replenished by +91 when falling under 10)."""
        tpcc = ran_tpcc
        rng = random.Random(0)
        touched = list(tpcc.stock._overlay)  # rows updated by NewOrder
        assert touched, "the mix must have updated stock"
        for rid in touched:
            qty = tpcc.stock.get(rid)[2]
            assert qty >= 10 or qty > 0
