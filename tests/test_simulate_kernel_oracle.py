"""Oracle for the replay kernels: kernels on == kernels off, bit for bit.

The measurement-path kernels (DESIGN.md §14) — closed-form warm state,
L1-filtered miss-stream replay, batched event dispatch — promise
*bit-exact* results: every field of :class:`MachineResult`, including
per-core cycle breakdowns and hierarchy counters, must be identical with
``REPRO_SIM_KERNELS=1`` and ``=0``.  This suite is that promise's oracle:

* the full (kind × regime × camp) cell grid, each cell replaying at
  least 50k cache accesses (warm references + measured data accesses +
  measured instruction-block accesses), compared field-for-field;
* a forced-fallback case — the SMP config's private MESI L2s feed
  invalidations back into the L1s, so the L1-filter must refuse to
  engage (``l1_filter_bypass`` fires) while results stay identical;
* the camp-uniform trailing-interval regression: lean cores' per-core
  breakdowns must attribute the measurement window *exactly*, which
  only holds if ``_run_throughput`` settles the open interval between
  each core's last event and the horizon.

``kernels_enabled()`` reads the environment per call, so the toggle is
a plain ``monkeypatch.setenv`` — no subprocesses.  The warm-state memo
and its negative cache are cleared around every run so each mode
derives its own state from scratch.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.parallel import WARM_FRACTIONS, RunSpec, execute
from repro.simulator import machine as machine_mod
from repro.simulator.configs import fc_cmp, fc_smp, lc_cmp
from repro.simulator.machine import Machine
from repro.simulator.profiling import RunProbe
from repro.workloads.driver import workload_for

CYCLES = 5_000

#: Per-cell study scale, chosen so every cell replays >= 50k accesses.
#: Saturated cells clear the floor at the quick scale through the warm
#: phase alone (every queued client trace is warmed); the unsaturated
#: single-client traces are shorter — and the OLTP one saturates near
#: 28k references at *any* scale — so those cells run larger scales and
#: the floor counts measured instruction-block accesses too (real L1i/L2
#: traffic the replay performs reference-for-reference).
SCALES = {
    ("dss", "saturated"): 0.01,
    ("oltp", "saturated"): 0.01,
    ("dss", "unsaturated"): 0.5,
    ("oltp", "unsaturated"): 0.2,
}

CAMPS = {"fc": fc_cmp, "lc": lc_cmp}

ACCESS_FLOOR = 50_000


def _reset_warm_memos() -> None:
    """Cold warm-state memo + negative cache, so each mode re-derives."""
    machine_mod._WARM_MEMO.clear()
    machine_mod._WARM_KERNEL_BAILS.clear()


def _accesses(workload, kind: str, result) -> int:
    """Cache accesses the run replayed: warm refs + measured traffic.

    The warm walk performs one data access per warm reference; the
    measured window counts data accesses and instruction-block accesses
    separately in ``hier_stats`` (stats reset at the warm/measure
    boundary, so there is no double count).
    """
    warm = sum(
        int(len(tr) * WARM_FRACTIONS[kind]) % len(tr)
        for tr in workload.traces if len(tr)
    )
    hs = result.hier_stats
    return warm + hs.data_accesses + hs.instr_blocks


@pytest.mark.parametrize("camp", sorted(CAMPS))
@pytest.mark.parametrize("regime", ["saturated", "unsaturated"])
@pytest.mark.parametrize("kind", ["dss", "oltp"])
def test_kernels_bit_exact_per_cell(kind, regime, camp, monkeypatch):
    """Field-for-field MachineResult equality, kernels on vs off."""
    scale = SCALES[(kind, regime)]
    spec = RunSpec(CAMPS[camp](n_cores=4, scale=scale), kind,
                   regime=regime)
    results = {}
    for mode in ("1", "0"):
        monkeypatch.setenv("REPRO_SIM_KERNELS", mode)
        _reset_warm_memos()
        results[mode] = execute(spec, scale, CYCLES)
    _reset_warm_memos()

    on, off = results["1"].to_dict(), results["0"].to_dict()
    assert on == off, (
        f"kernels-on result diverged from the interpreted reference for "
        f"{kind}/{regime}/{camp}"
    )
    # The cell must be a real workout, not a toy: >= 50k replayed
    # accesses (same workload objects both modes — driver cache).
    workload = workload_for(kind, regime, scale)
    n = _accesses(workload, kind, results["0"])
    assert n >= ACCESS_FLOOR, (
        f"{kind}/{regime}/{camp} exercised only {n} accesses"
    )


def test_smp_forces_filter_bypass_with_identical_results(monkeypatch):
    """Coherent private L2s (SMP) must bypass the L1 filter, bit-exact.

    The MESI L2s invalidate L1 lines from *outside* the local access
    stream, so a recorded L1 outcome stream is not replayable — the
    kernels must fall back to the full interpreted path for the whole
    run and say so through ``l1_filter_bypass``.
    """
    scale = 0.01
    workload = workload_for("oltp", "saturated", scale)
    results, counters = {}, {}
    for mode in ("1", "0"):
        monkeypatch.setenv("REPRO_SIM_KERNELS", mode)
        _reset_warm_memos()
        probe = RunProbe()
        machine = Machine(fc_smp(n_nodes=4, scale=scale))
        result = machine.run(workload, measure_cycles=CYCLES,
                             warm_fraction=WARM_FRACTIONS["oltp"],
                             probe=probe)
        results[mode] = result.to_dict()
        counters[mode] = dict(probe.counters)
    _reset_warm_memos()

    assert results["1"] == results["0"]
    # Kernels on: the whole-run bypass marker fired and nothing was
    # served from a recorded outcome stream.
    assert counters["1"].get("l1_filter_bypass", 0) >= 1
    assert counters["1"].get("l1_filter_hits", 0) == 0
    # Kernels off: the marker is a kernel artifact and must not appear.
    assert counters["0"].get("l1_filter_bypass", 0) == 0
    # The fallback really was the coherent case, not an empty run.
    assert results["1"]["hier_stats"]["data_accesses"] > 0


@pytest.mark.parametrize("kernels", ["1", "0"])
def test_lean_trailing_interval_is_attributed(kernels, monkeypatch):
    """Lean per-core breakdowns must sum to the window exactly.

    ``_run_throughput`` stops dispatching at the horizon, which leaves
    each lean core with an open interval [last event, horizon) that only
    ``LeanCore.settle`` attributes; without the camp-uniform settle call
    the per-core sums fall short of the window by that trailing slice.
    (Fat cores account whole ROB blocks at completion and legitimately
    overshoot the horizon, so the exact-sum invariant is lean-only.)
    Parametrized over the kill switch so the batched dispatch path and
    the interpreted loop both honour the invariant.
    """
    monkeypatch.setenv("REPRO_SIM_KERNELS", kernels)
    _reset_warm_memos()
    workload = workload_for("oltp", "saturated", 0.01)
    machine = Machine(lc_cmp(n_cores=4, scale=0.01))
    result = machine.run(workload, measure_cycles=CYCLES,
                         warm_fraction=WARM_FRACTIONS["oltp"])
    _reset_warm_memos()

    assert result.per_core, "expected per-core breakdowns"
    for core_id, breakdown in enumerate(result.per_core):
        total = sum(dataclasses.asdict(breakdown).values())
        assert total == pytest.approx(result.elapsed, rel=0, abs=1e-6), (
            f"core {core_id} attributed {total} of a {result.elapsed} "
            f"cycle window"
        )
