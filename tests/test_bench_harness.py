"""The perf-regression bench harness: schema, clocks, provenance.

``repro bench`` writes one ``BENCH_*.json`` snapshot per PR; its value
is entirely in being comparable over time, so these tests pin the
contract rather than any timing number:

- the record validates against the documented schema, with the three
  modes (serial, parallel-cold, parallel-warm) in order;
- all recorded durations come from monotonic clocks — the wall clock
  (``time.time``) is poisoned for an entire run and nothing notices;
- the warm run proves the cache worked: zero simulations, every spec a
  disk hit, with per-source provenance from telemetry.
"""

import json
import time

import pytest

from repro.core import bench
from repro.core.bench import (
    BENCH_MODES,
    BENCH_SCHEMA,
    format_bench,
    run_bench,
    validate_bench,
)
from repro.core.parallel import CODE_VERSION


@pytest.fixture
def clean_env(monkeypatch):
    for var in ("REPRO_TELEMETRY", "REPRO_FAULTS", "REPRO_RETRIES",
                "REPRO_TIMEOUT", "REPRO_BACKOFF", "REPRO_FAIL_FAST",
                "REPRO_CHECKPOINT", "REPRO_JOBS", "REPRO_CACHE_DIR"):
        monkeypatch.delenv(var, raising=False)
    return monkeypatch


@pytest.fixture(scope="module")
def quick_record(tmp_path_factory):
    """One shared --quick bench run (the expensive part) for this module."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_TEST.json"
    record = run_bench(quick=True, out_path=str(out))
    return record, out


@pytest.mark.slow
class TestQuickBench:
    def test_writes_schema_valid_json(self, quick_record):
        record, out = quick_record
        assert out.exists()
        on_disk = json.loads(out.read_text())
        validate_bench(on_disk)
        assert on_disk == json.loads(json.dumps(record))  # same snapshot
        assert on_disk["schema"] == BENCH_SCHEMA
        assert on_disk["code_version"] == CODE_VERSION
        assert on_disk["config"]["quick"] is True

    def test_modes_in_contract_order(self, quick_record):
        record, _ = quick_record
        assert [r["mode"] for r in record["runs"]] == list(BENCH_MODES)
        for run in record["runs"]:
            assert run["wall_seconds"] >= 0
            assert run["specs"] == len(record["config"]["sizes_mb"]) * len(
                record["config"]["kinds"])

    def test_warm_run_is_fully_cache_served(self, quick_record):
        record, _ = quick_record
        cold, warm = record["runs"][1], record["runs"][2]
        assert cold["simulated"] == warm["specs"]
        assert warm["simulated"] == 0
        assert warm["cache"]["hits"] >= warm["specs"]
        # Provenance: telemetry attributes every warm hit to the sweep
        # lookup path, and every cold store likewise.
        assert warm["cache_by_source"]["sweep"]["hits"] >= warm["specs"]
        assert cold["cache_by_source"]["sweep"]["stores"] == cold["specs"]

    def test_serial_and_parallel_measure_the_same_work(self, quick_record):
        record, _ = quick_record
        serial, cold = record["runs"][0], record["runs"][1]
        # Determinism: both paths simulate identical accesses.
        assert serial["accesses"] == cold["accesses"] > 0
        assert serial["cache"] is None  # serial mode is the pure baseline

    def test_format_bench_renders(self, quick_record):
        record, _ = quick_record
        text = format_bench(record)
        for mode in BENCH_MODES:
            assert mode in text


@pytest.mark.slow
def test_monotonic_clocks_only(clean_env, monkeypatch):
    """Poison the wall clock for a whole run: every recorded duration
    must come from time.monotonic/perf_counter, so nothing breaks."""
    def _no_wall_clock():
        raise AssertionError("bench harness read the wall clock")

    monkeypatch.setattr(time, "time", _no_wall_clock)
    record = run_bench(quick=True, out_path=None)
    validate_bench(record)


class TestValidateBench:
    def _minimal(self):
        run = {"mode": "serial", "wall_seconds": 1.0, "specs": 3,
               "simulated": 3, "accesses": 100, "accesses_per_sec": 100.0,
               "cache": None}
        warm_cache = {"hits": 3, "misses": 0, "stores": 0, "errors": 0}
        return {
            "schema": BENCH_SCHEMA,
            "code_version": CODE_VERSION,
            "commit": None,
            "python": "3.x",
            "platform": "test",
            "config": {"scale": 0.01, "measure_cycles": 5000,
                       "sizes_mb": [1.0], "kinds": ["dss"], "jobs": 2,
                       "quick": True},
            "runs": [
                dict(run),
                dict(run, mode="parallel-cold",
                     cache={"hits": 0, "misses": 3, "stores": 3,
                            "errors": 0}),
                dict(run, mode="parallel-warm", simulated=0,
                     cache=warm_cache),
            ],
        }

    def test_minimal_record_passes(self):
        validate_bench(self._minimal())

    def test_rejects_wrong_schema(self):
        record = self._minimal()
        record["schema"] = "repro-bench-v0"
        with pytest.raises(ValueError, match="schema"):
            validate_bench(record)

    def test_rejects_wrong_mode_order(self):
        record = self._minimal()
        record["runs"].reverse()
        with pytest.raises(ValueError, match="in order"):
            validate_bench(record)

    def test_rejects_negative_wall(self):
        record = self._minimal()
        record["runs"][0]["wall_seconds"] = -0.5
        with pytest.raises(ValueError, match="non-negative"):
            validate_bench(record)

    def test_rejects_unwarmed_warm_run(self):
        record = self._minimal()
        record["runs"][2]["simulated"] = 1  # warm run re-simulated
        with pytest.raises(ValueError, match="result\\s+cache"):
            validate_bench(record)

    def test_rejects_missing_config_field(self):
        record = self._minimal()
        del record["config"]["jobs"]
        with pytest.raises(ValueError, match="config missing"):
            validate_bench(record)


@pytest.mark.slow
def test_cli_and_standalone_entry_points(clean_env, tmp_path, capsys):
    """``repro bench --quick`` and ``benchmarks/bench_harness.py`` drive
    the same engine and write the same schema."""
    import sys

    from repro.cli import main as cli_main

    sys.path.insert(0, "benchmarks")
    try:
        from bench_harness import main as standalone_main
    finally:
        sys.path.pop(0)

    cli_out = tmp_path / "BENCH_CLI.json"
    assert cli_main(["bench", "--quick",
                     "--bench-out", str(cli_out)]) == 0
    assert "wrote" in capsys.readouterr().out
    validate_bench(json.loads(cli_out.read_text()))

    sa_out = tmp_path / "BENCH_SA.json"
    assert standalone_main(["--quick", "--out", str(sa_out)]) == 0
    validate_bench(json.loads(sa_out.read_text()))


def test_default_out_is_repo_root_snapshot():
    assert bench.DEFAULT_OUT == "BENCH_PR3.json"
