"""The perf-regression bench harness: schema, clocks, provenance.

``repro bench`` writes one ``BENCH_*.json`` snapshot per PR; its value
is entirely in being comparable over time, so these tests pin the
contract rather than any timing number:

- the record validates against the documented schema, with the three
  modes (serial, parallel-cold, parallel-warm) in order;
- all recorded durations come from monotonic clocks — the wall clock
  (``time.time``) is poisoned for an entire run and nothing notices;
- the warm run proves the cache worked: zero simulations, every spec a
  disk hit, with per-source provenance from telemetry.
"""

import json
import time

import pytest

from repro.core import bench
from repro.core.bench import (
    BENCH_MODES,
    BENCH_SCHEMA,
    compare_bench,
    format_bench,
    load_baseline,
    run_bench,
    validate_bench,
)
from repro.core.parallel import CODE_VERSION


@pytest.fixture
def clean_env(monkeypatch):
    for var in ("REPRO_TELEMETRY", "REPRO_FAULTS", "REPRO_RETRIES",
                "REPRO_TIMEOUT", "REPRO_BACKOFF", "REPRO_FAIL_FAST",
                "REPRO_CHECKPOINT", "REPRO_JOBS", "REPRO_CACHE_DIR",
                "REPRO_TRACE_DIR"):
        monkeypatch.delenv(var, raising=False)
    return monkeypatch


@pytest.fixture(scope="module")
def quick_record(tmp_path_factory):
    """One shared --quick bench run (the expensive part) for this module."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_TEST.json"
    record = run_bench(quick=True, out_path=str(out))
    return record, out


@pytest.mark.slow
class TestQuickBench:
    def test_writes_schema_valid_json(self, quick_record):
        record, out = quick_record
        assert out.exists()
        on_disk = json.loads(out.read_text())
        validate_bench(on_disk)
        assert on_disk == json.loads(json.dumps(record))  # same snapshot
        assert on_disk["schema"] == BENCH_SCHEMA
        assert on_disk["code_version"] == CODE_VERSION
        assert on_disk["config"]["quick"] is True

    def test_modes_in_contract_order(self, quick_record):
        record, _ = quick_record
        assert [r["mode"] for r in record["runs"]] == list(BENCH_MODES)
        for run in record["runs"]:
            assert run["wall_seconds"] >= 0
            assert run["specs"] == len(record["config"]["sizes_mb"]) * len(
                record["config"]["kinds"])

    def test_warm_run_is_fully_cache_served(self, quick_record):
        record, _ = quick_record
        cold, warm = record["runs"][1], record["runs"][2]
        assert cold["simulated"] == warm["specs"]
        assert warm["simulated"] == 0
        assert warm["cache"]["hits"] >= warm["specs"]
        # Provenance: telemetry attributes every warm hit to the sweep
        # lookup path, and every cold store likewise.
        assert warm["cache_by_source"]["sweep"]["hits"] >= warm["specs"]
        assert cold["cache_by_source"]["sweep"]["stores"] == cold["specs"]

    def test_serial_and_parallel_measure_the_same_work(self, quick_record):
        record, _ = quick_record
        serial, cold = record["runs"][0], record["runs"][1]
        # Determinism: both paths simulate identical accesses.
        assert serial["accesses"] == cold["accesses"] > 0
        assert serial["cache"] is None  # serial mode is the pure baseline

    def test_phase_split_attributes_the_wall_time(self, quick_record):
        record, _ = quick_record
        for run in record["runs"]:
            assert run["trace_build_seconds"] >= 0
            assert run["simulate_seconds"] >= 0
            # The two phases partition the wall (rounding slack only).
            assert (run["trace_build_seconds"] + run["simulate_seconds"]
                    <= run["wall_seconds"] + 1e-3)
        # The serial run starts with cleared memoizers and an empty trace
        # store, so it pays the real engine-execution cost up front.
        assert record["runs"][0]["trace_build_seconds"] > 0

    def test_format_bench_renders(self, quick_record):
        record, _ = quick_record
        text = format_bench(record)
        for mode in BENCH_MODES:
            assert mode in text


@pytest.mark.slow
def test_monotonic_clocks_only(clean_env, monkeypatch):
    """Poison the wall clock for a whole run: every recorded duration
    must come from time.monotonic/perf_counter, so nothing breaks."""
    def _no_wall_clock():
        raise AssertionError("bench harness read the wall clock")

    monkeypatch.setattr(time, "time", _no_wall_clock)
    record = run_bench(quick=True, out_path=None)
    validate_bench(record)


class TestValidateBench:
    def _minimal(self):
        run = {"mode": "serial", "wall_seconds": 1.0,
               "trace_build_seconds": 0.4, "simulate_seconds": 0.6,
               "specs": 3, "simulated": 3, "accesses": 100,
               "accesses_per_sec": 100.0, "cache": None}
        warm_cache = {"hits": 3, "misses": 0, "stores": 0, "errors": 0}
        return {
            "schema": BENCH_SCHEMA,
            "code_version": CODE_VERSION,
            "commit": None,
            "python": "3.x",
            "platform": "test",
            "config": {"scale": 0.01, "measure_cycles": 5000,
                       "sizes_mb": [1.0], "kinds": ["dss"], "jobs": 2,
                       "quick": True},
            "runs": [
                dict(run),
                dict(run, mode="parallel-cold",
                     cache={"hits": 0, "misses": 3, "stores": 3,
                            "errors": 0}),
                dict(run, mode="parallel-warm", simulated=0,
                     cache=warm_cache),
            ],
        }

    def test_minimal_record_passes(self):
        validate_bench(self._minimal())

    def test_rejects_wrong_schema(self):
        record = self._minimal()
        record["schema"] = "repro-bench-v0"
        with pytest.raises(ValueError, match="schema"):
            validate_bench(record)

    def test_rejects_wrong_mode_order(self):
        record = self._minimal()
        record["runs"].reverse()
        with pytest.raises(ValueError, match="in order"):
            validate_bench(record)

    def test_rejects_negative_wall(self):
        record = self._minimal()
        record["runs"][0]["wall_seconds"] = -0.5
        with pytest.raises(ValueError, match="non-negative"):
            validate_bench(record)

    def test_rejects_unwarmed_warm_run(self):
        record = self._minimal()
        record["runs"][2]["simulated"] = 1  # warm run re-simulated
        with pytest.raises(ValueError, match="result\\s+cache"):
            validate_bench(record)

    def test_rejects_missing_config_field(self):
        record = self._minimal()
        del record["config"]["jobs"]
        with pytest.raises(ValueError, match="config missing"):
            validate_bench(record)

    def test_rejects_missing_phase_split(self):
        record = self._minimal()
        del record["runs"][0]["trace_build_seconds"]
        with pytest.raises(ValueError, match="trace_build_seconds"):
            validate_bench(record)

    def test_accepts_compare_annotation(self):
        record = self._minimal()
        record["compare"] = compare_bench(record, self._minimal(),
                                          baseline_path="BENCH_OLD.json")
        validate_bench(record)
        record["compare"] = "not-an-object"
        with pytest.raises(ValueError, match="compare"):
            validate_bench(record)


class TestCompare:
    def _record(self, walls):
        return {"schema": BENCH_SCHEMA, "commit": "abc123",
                "runs": [{"mode": mode, "wall_seconds": wall}
                         for mode, wall in walls.items()]}

    def test_per_mode_and_total_speedups(self):
        new = self._record({"serial": 1.0, "parallel-cold": 0.5,
                            "parallel-warm": 0.1})
        base = self._record({"serial": 2.0, "parallel-cold": 2.0,
                             "parallel-warm": 0.2})
        cmp = compare_bench(new, base, baseline_path="b.json")
        assert cmp["modes"]["serial"]["speedup"] == 2.0
        assert cmp["modes"]["parallel-cold"]["speedup"] == 4.0
        assert cmp["total_baseline_seconds"] == pytest.approx(4.2)
        assert cmp["total_speedup"] == pytest.approx(2.625)
        assert cmp["baseline_commit"] == "abc123"

    def test_phase_speedups_attribute_the_split(self):
        new = self._record({"serial": 1.0, "parallel-cold": 0.5})
        base = self._record({"serial": 2.0, "parallel-cold": 2.0})
        for run, build, sim in zip(new["runs"], (0.4, 0.1), (0.6, 0.4)):
            run.update(trace_build_seconds=build, simulate_seconds=sim)
        for run, build, sim in zip(base["runs"], (1.5, 1.2), (0.5, 0.8)):
            run.update(trace_build_seconds=build, simulate_seconds=sim)
        cmp = compare_bench(new, base)
        assert cmp["phases"]["trace_build_seconds"]["speedup"] == \
            pytest.approx(2.7 / 0.5)
        assert cmp["phases"]["simulate_seconds"]["speedup"] == \
            pytest.approx(1.3 / 1.0)
        assert "trace_build 5.4x" in format_bench(
            {**new, "code_version": CODE_VERSION, "python": "3.x",
             "platform": "test", "runs": [
                 {**run, "specs": 1, "simulated": 1, "accesses": 10,
                  "accesses_per_sec": 10.0, "worker_utilization": 1.0,
                  "cache": None} for run in new["runs"]],
             "compare": cmp})

    def test_v1_baseline_without_phase_split_omits_phases(self):
        new = self._record({"serial": 1.0})
        new["runs"][0].update(trace_build_seconds=0.4, simulate_seconds=0.6)
        base = self._record({"serial": 2.0})  # no phase fields (v1)
        cmp = compare_bench(new, base)
        assert "phases" not in cmp
        assert cmp["modes"]["serial"]["speedup"] == 2.0

    def test_missing_baseline_mode_contributes_nothing(self):
        new = self._record({"serial": 1.0, "parallel-cold": 0.5})
        base = self._record({"serial": 3.0})
        cmp = compare_bench(new, base)
        assert "parallel-cold" not in cmp["modes"]
        assert cmp["total_baseline_seconds"] == 3.0
        assert cmp["total_wall_seconds"] == 1.0

    def test_format_renders_comparison(self):
        new = self._record({"serial": 1.0})
        new.update({"code_version": CODE_VERSION, "python": "3.x",
                    "platform": "test"})
        new["runs"][0].update({"trace_build_seconds": 0.4,
                               "simulate_seconds": 0.6, "specs": 1,
                               "simulated": 1, "accesses": 10,
                               "accesses_per_sec": 10.0,
                               "worker_utilization": 1.0, "cache": None})
        new["compare"] = compare_bench(new, self._record({"serial": 2.0}),
                                       baseline_path="b.json")
        assert "total 2.0x" in format_bench(new)

    def test_load_baseline_is_tolerant(self, tmp_path):
        assert load_baseline(str(tmp_path / "missing.json")) is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert load_baseline(str(bad)) is None
        shapeless = tmp_path / "shapeless.json"
        shapeless.write_text('{"schema": "x"}')
        assert load_baseline(str(shapeless)) is None
        ok = tmp_path / "ok.json"
        ok.write_text('{"schema": "repro-bench-v1", "runs": []}')
        assert load_baseline(str(ok)) == {"schema": "repro-bench-v1",
                                          "runs": []}


@pytest.mark.slow
def test_cli_and_standalone_entry_points(clean_env, tmp_path, capsys):
    """``repro bench --quick`` and ``benchmarks/bench_harness.py`` drive
    the same engine and write the same schema."""
    import sys

    from repro.cli import main as cli_main

    sys.path.insert(0, "benchmarks")
    try:
        from bench_harness import main as standalone_main
    finally:
        sys.path.pop(0)

    cli_out = tmp_path / "BENCH_CLI.json"
    assert cli_main(["bench", "--quick",
                     "--bench-out", str(cli_out)]) == 0
    assert "wrote" in capsys.readouterr().out
    validate_bench(json.loads(cli_out.read_text()))

    sa_out = tmp_path / "BENCH_SA.json"
    assert standalone_main(["--quick", "--out", str(sa_out)]) == 0
    validate_bench(json.loads(sa_out.read_text()))


def test_default_out_is_repo_root_snapshot():
    assert bench.DEFAULT_OUT == "BENCH_PR9.json"
