"""Unit and property tests for the execution-time breakdown."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.breakdown import Breakdown

components = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)


def make(**kw):
    return Breakdown(**kw)


class TestDerived:
    def test_groupings(self):
        bd = make(computation=10, i_l2=1, i_mem=2, d_l1x=3, d_l2=4,
                  d_mem=5, d_coh=6, other=7, idle=8)
        assert bd.i_stalls == 3
        assert bd.d_stalls == 18
        assert bd.d_onchip == 7
        assert bd.d_offchip == 11
        assert bd.busy == 38
        assert bd.total == 46

    def test_fraction(self):
        bd = make(computation=25, d_l2=75)
        assert bd.fraction(bd.computation) == 0.25
        assert Breakdown().fraction(1.0) == 0.0

    def test_coarse_view_sums_to_one(self):
        bd = make(computation=1, i_l2=2, d_mem=3, other=4)
        assert sum(bd.coarse().values()) == pytest.approx(1.0)

    def test_l2_view_sums_to_one(self):
        bd = make(computation=1, i_l2=2, d_l2=3, d_mem=4, other=5)
        assert sum(bd.l2_view().values()) == pytest.approx(1.0)

    def test_per_instruction(self):
        bd = make(computation=100, d_l2=50)
        cpi = bd.per_instruction(50)
        assert cpi.computation == 2.0 and cpi.d_l2 == 1.0

    def test_per_instruction_rejects_zero(self):
        with pytest.raises(ValueError):
            make(computation=1).per_instruction(0)


class TestArithmetic:
    def test_add_in_place(self):
        a = make(computation=1, d_l2=2)
        a.add(make(computation=3, i_mem=4))
        assert a.computation == 4 and a.d_l2 == 2 and a.i_mem == 4

    def test_scaled_copy(self):
        a = make(computation=2, other=4)
        b = a.scaled(0.5)
        assert b.computation == 1 and b.other == 2
        assert a.computation == 2  # original untouched

    def test_total_of(self):
        parts = [make(computation=i) for i in range(5)]
        assert Breakdown.total_of(parts).computation == 10


@settings(max_examples=60, deadline=None)
@given(computation=components, i_l2=components, i_mem=components,
       d_l1x=components, d_l2=components, d_mem=components,
       d_coh=components, other=components, idle=components)
def test_breakdown_invariants(**kw):
    """Properties: components partition busy time; views are consistent."""
    bd = Breakdown(**kw)
    assert bd.busy == pytest.approx(
        bd.computation + bd.i_stalls + bd.d_stalls + bd.other)
    assert bd.d_stalls == pytest.approx(bd.d_onchip + bd.d_offchip)
    if bd.busy > 0:
        assert sum(bd.coarse().values()) == pytest.approx(1.0)
        assert sum(bd.l2_view().values()) == pytest.approx(1.0)
    # per_instruction preserves ratios.
    cpi = bd.per_instruction(7)
    assert cpi.busy == pytest.approx(bd.busy / 7)


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.builds(Breakdown, computation=components, d_l2=components,
              other=components),
    max_size=8,
))
def test_total_of_equals_field_sums(parts):
    total = Breakdown.total_of(parts)
    assert total.computation == pytest.approx(
        sum(p.computation for p in parts))
    assert total.busy == pytest.approx(sum(p.busy for p in parts))
