"""Transparency guarantees of the islands layer: a single-socket
machine is bit-identical to the pre-island simulator, the default
placement's client assignment matches the global round-robin slot for
slot, and pre-island ``machine-result-v1`` documents still load."""

import json
import os

import pytest

from repro.core.experiment import Experiment
from repro.simulator.configs import fc_cmp, lc_cmp
from repro.simulator.machine import Machine, MachineResult
from repro.simulator.topology import IslandTopology

SCALE = 0.02
FIXTURE = os.path.join(os.path.dirname(__file__), "data",
                       "machine_result_v1.json")

#: The four (kind, regime) cells the study measures.
CELLS = [("oltp", "saturated"), ("oltp", "unsaturated"),
         ("dss", "saturated"), ("dss", "unsaturated")]


def _strip_config_name(doc):
    # An explicit 1-socket topology names the config identically (the
    # island suffix is empty), but drop the name anyway so the check
    # reads as "every measured field", not "every label".
    doc = dict(doc)
    doc.pop("config_name", None)
    return doc


class TestSingleSocketTransparency:
    @pytest.mark.parametrize("kind,regime", CELLS)
    def test_explicit_one_socket_topology_is_identity(self, kind, regime):
        """A MachineConfig carrying IslandTopology(n_sockets=1) must
        produce field-for-field identical results to one carrying no
        topology at all, across all four (kind, regime) cells."""
        exp = Experiment(scale=SCALE, measure_cycles=20_000,
                         use_cache=False)
        workload = exp.workload(kind, regime)
        base = Machine(fc_cmp(n_cores=2, l2_nominal_mb=2.0,
                              scale=SCALE))
        topo = Machine(fc_cmp(n_cores=2, l2_nominal_mb=2.0, scale=SCALE,
                              topology=IslandTopology(n_sockets=1)))
        mode = "response" if regime == "unsaturated" else "throughput"
        r_base = base.run(workload, mode=mode, measure_cycles=20_000)
        r_topo = topo.run(workload, mode=mode, measure_cycles=20_000)
        assert (_strip_config_name(r_base.to_dict())
                == _strip_config_name(r_topo.to_dict()))

    def test_lean_camp_transparency(self):
        exp = Experiment(scale=SCALE, measure_cycles=20_000,
                         use_cache=False)
        workload = exp.workload("oltp", "saturated")
        r_base = Machine(lc_cmp(n_cores=2, l2_nominal_mb=2.0,
                                scale=SCALE)).run(
            workload, measure_cycles=20_000)
        r_topo = Machine(lc_cmp(n_cores=2, l2_nominal_mb=2.0, scale=SCALE,
                                topology=IslandTopology(n_sockets=1))).run(
            workload, measure_cycles=20_000)
        assert (_strip_config_name(r_base.to_dict())
                == _strip_config_name(r_topo.to_dict()))

    def test_default_placement_assignment_parity(self):
        """shared-everything on an islands machine places clients in
        exactly the pre-island global round-robin slots."""
        exp = Experiment(scale=SCALE, use_cache=False)
        traces = exp.workload("oltp", "saturated").traces
        plain = Machine(fc_cmp(n_cores=4, scale=SCALE))
        isl = Machine(fc_cmp(n_cores=4, scale=SCALE,
                             topology=IslandTopology(n_sockets=2)))
        assert (plain._assign(traces)
                == isl._assign(traces, "shared-everything"))


class TestResultFormatCompatibility:
    def test_v1_fixture_loads_with_default_island_counters(self):
        """A committed pre-island document (no island counters in
        ``hier_stats``) must load, with the counters at zero."""
        with open(FIXTURE) as f:
            doc = json.load(f)
        for name in ("remote_accesses", "remote_l1x",
                     "remote_extra_cycles"):
            assert name not in doc["hier_stats"]
        result = MachineResult.from_dict(doc)
        assert result.hier_stats.remote_accesses == 0
        assert result.hier_stats.remote_l1x == 0
        assert result.hier_stats.remote_extra_cycles == 0
        assert result.ipc == doc["ipc"]
        # And it round-trips into a current-format document.
        redoc = result.to_dict()
        assert redoc["hier_stats"]["remote_accesses"] == 0
        assert MachineResult.from_dict(redoc).ipc == result.ipc

    def test_v1_fixture_still_requires_core_counters(self):
        with open(FIXTURE) as f:
            doc = json.load(f)
        broken = json.loads(json.dumps(doc))
        del broken["hier_stats"]["data_level_counts"]
        with pytest.raises(ValueError):
            MachineResult.from_dict(broken)
