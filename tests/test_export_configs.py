"""Tests for result export and the canonical machine configs."""

import csv
import io
import json

import pytest

from repro.core.export import result_record, sweep_records, to_csv, to_json
from repro.core.sweeps import SweepPoint
from repro.simulator import cacti
from repro.simulator.configs import (
    BASELINE_L2_MB,
    FIG6_L2_SIZES_MB,
    default_scale,
    fc_cmp,
    fc_smp,
    lc_cmp,
)


def fake_result():
    from tests.test_core_framework import fake_result as fr
    return fr()


class TestExport:
    def test_record_fields(self):
        r = result_record(fake_result())
        assert r["ipc"] == 0.4
        assert r["cycles_computation"] == 400
        assert r["frac_d_stalls"] == pytest.approx(300 / 800)
        assert r["data_from_l1"] == 0.5
        assert r["data_from_mem"] == 0.1

    def test_fractions_consistent(self):
        r = result_record(fake_result())
        assert r["frac_computation"] + r["frac_i_stalls"] + \
            r["frac_d_stalls"] + r["frac_other"] == pytest.approx(1.0)
        assert r["frac_d_onchip"] + r["frac_d_offchip"] == pytest.approx(
            r["frac_d_stalls"])

    def test_sweep_records_carry_x(self):
        pts = [SweepPoint(x=1.0, result=fake_result()),
               SweepPoint(x=2.0, result=fake_result())]
        recs = sweep_records(pts, x_name="l2_mb")
        assert [r["l2_mb"] for r in recs] == [1.0, 2.0]

    def test_csv_roundtrip(self):
        recs = sweep_records([SweepPoint(x=4.0, result=fake_result())])
        text = to_csv(recs)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 1
        assert float(rows[0]["x"]) == 4.0
        assert float(rows[0]["ipc"]) == 0.4

    def test_csv_rejects_empty(self):
        with pytest.raises(ValueError):
            to_csv([])

    def test_json_parses(self):
        recs = [result_record(fake_result())]
        parsed = json.loads(to_json(recs))
        assert parsed[0]["retired"] == 400


class TestConfigs:
    def test_fig6_sizes_cover_paper_range(self):
        assert FIG6_L2_SIZES_MB[0] == 1.0
        assert FIG6_L2_SIZES_MB[-1] == 26.0
        assert BASELINE_L2_MB == 26.0

    def test_fc_cmp_shape(self):
        cfg = fc_cmp(n_cores=8, l2_nominal_mb=16, scale=0.5)
        assert cfg.core.camp == "fc"
        assert not cfg.smp
        assert cfg.hierarchy.n_cores == 8
        assert cfg.hierarchy.l2_mb == 8.0          # scaled capacity
        assert cfg.hierarchy.l2_nominal_mb == 16.0  # nominal label
        assert cfg.n_hardware_contexts == 8

    def test_lc_cmp_shape(self):
        cfg = lc_cmp(n_cores=4, l2_nominal_mb=26, scale=1.0)
        assert cfg.core.camp == "lc"
        assert cfg.core.inorder_issue
        assert cfg.n_hardware_contexts == 16
        # Lean cores default to smaller (Niagara-class) L1s.
        assert cfg.hierarchy.l1d_kb == 16

    def test_lc_l1_override(self):
        cfg = lc_cmp(l1d_kb=64)
        assert cfg.hierarchy.l1d_kb == 64

    def test_const_latency_in_name_and_params(self):
        cfg = fc_cmp(l2_nominal_mb=8, const_latency=4)
        assert "const 4cyc" in cfg.name
        assert cfg.hierarchy.resolved_l2_latency() == 4

    def test_real_latency_follows_nominal_size(self):
        cfg = fc_cmp(l2_nominal_mb=8, scale=0.25)
        assert (cfg.hierarchy.resolved_l2_latency()
                == cacti.l2_hit_latency(8))

    def test_smp_config(self):
        cfg = fc_smp(n_nodes=4, private_l2_nominal_mb=4, scale=0.5)
        assert cfg.smp
        assert cfg.hierarchy.l2_mb == 2.0

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.75")
        assert default_scale() == 0.75
        monkeypatch.delenv("REPRO_SCALE")
        assert default_scale() == 0.25
