"""Unit tests for the CACTI-style latency/area model."""

import pytest

from repro.simulator import cacti


class TestLatency:
    def test_monotone_in_size(self):
        sizes = [0.25, 0.5, 1, 2, 4, 8, 16, 26, 64]
        lats = [cacti.l2_hit_latency(s) for s in sizes]
        assert lats == sorted(lats)

    def test_paper_anchors(self):
        # ~8 cycles at 1 MB, ~22 at 26 MB (Fig. 1(b) era anchors).
        assert 6 <= cacti.l2_hit_latency(1.0) <= 9
        assert 20 <= cacti.l2_hit_latency(26.0) <= 24
        # Power5-class multi-MB caches around 14 cycles.
        assert 12 <= cacti.l2_hit_latency(8.0) <= 16

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            cacti.l2_hit_latency(0)
        with pytest.raises(ValueError):
            cacti.l2_hit_latency(-1)

    def test_sublinear_growth(self):
        """Doubling capacity grows latency by less than 2x (sqrt law)."""
        for s in (1.0, 4.0, 13.0):
            assert cacti.l2_hit_latency(2 * s) < 2 * cacti.l2_hit_latency(s)


class TestL1Latency:
    def test_small_fast(self):
        assert cacti.l1_hit_latency(8) == 1
        assert cacti.l1_hit_latency(32) == 2
        assert cacti.l1_hit_latency(128) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            cacti.l1_hit_latency(0)


class TestEstimate:
    def test_fields_consistent(self):
        e = cacti.estimate(16.0)
        assert e.latency_cycles == cacti.l2_hit_latency(16.0)
        assert e.area_mm2 > cacti.estimate(4.0).area_mm2
        assert e.dynamic_nj > cacti.estimate(4.0).dynamic_nj

    def test_latency_curve(self):
        curve = cacti.latency_curve([1.0, 4.0])
        assert curve == [(1.0, cacti.l2_hit_latency(1.0)),
                         (4.0, cacti.l2_hit_latency(4.0))]
