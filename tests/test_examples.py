"""Smoke tests: every shipped example runs to completion.

Examples are the first thing an adopter executes; these tests keep them
green.  They run in-process (each example guards its entry point with
``__main__``) by importing and calling ``main()``.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None) -> None:
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"),
                                                  path)
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "Lean-camp throughput advantage" in out

    def test_cache_size_study(self, capsys):
        run_example("cache_size_study.py", ["oltp"])
        out = capsys.readouterr().out
        assert "latency tax" in out

    def test_cache_size_study_rejects_bad_workload(self):
        with pytest.raises(SystemExit):
            run_example("cache_size_study.py", ["olap"])

    def test_run_your_own_query(self, capsys):
        run_example("run_your_own_query.py")
        out = capsys.readouterr().out
        assert "Revenue by category" in out
        assert "FC-CMP" in out and "LC-CMP" in out

    def test_staged_scheduling(self, capsys):
        run_example("staged_scheduling.py")
        out = capsys.readouterr().out
        assert "staged / cohort" in out

    def test_design_space_exploration(self, capsys):
        run_example("design_space_exploration.py")
        out = capsys.readouterr().out
        assert "Equal-area verdict confirmed" in out
        assert "simulator-confirmed frontier" in out

    def test_microbench_calibration(self, capsys):
        run_example("microbench_calibration.py")
        out = capsys.readouterr().out
        assert "L1D sensitivity" in out
