"""The telemetry subsystem: schema, overhead, aggregation, atomicity.

Four invariants keep the observability layer trustworthy:

- every emitted event validates against the documented ``EVENT_SCHEMA``
  (the log is a contract, not a junk drawer);
- the enabled path adds only bounded overhead to a sweep (no accidental
  per-access work in hot loops);
- aggregation math (nearest-rank percentiles, worker utilization, cache
  provenance) matches hand-computed fixtures;
- concurrent writers — the sweep scheduler plus pool workers — never
  interleave corrupt lines (one atomic append per event).

The per-source cache attribution regression (salvage stores after a
``SweepError`` were previously indistinguishable from normal stores) is
locked down here too.
"""

import json
import os
from concurrent import futures

import pytest

from repro.core import telemetry
from repro.core.experiment import Experiment
from repro.core.parallel import RunSpec, SweepError, run_specs
from repro.core.telemetry import (
    EVENT_SCHEMA,
    NULL_RECORDER,
    TelemetryRecorder,
    as_recorder,
    load_events,
    percentile,
    summarize,
    telemetry_path,
    validate_event,
)
from repro.simulator.configs import fc_cmp

SCALE = 0.01
CYCLES = 5_000


def _specs(n: int = 3) -> list[RunSpec]:
    return [
        RunSpec(fc_cmp(n_cores=4, l2_nominal_mb=mb, scale=SCALE), "dss")
        for mb in (1.0, 2.0, 4.0, 8.0)[:n]
    ]


@pytest.fixture
def clean_env(monkeypatch):
    for var in ("REPRO_TELEMETRY", "REPRO_FAULTS", "REPRO_RETRIES",
                "REPRO_TIMEOUT", "REPRO_BACKOFF", "REPRO_FAIL_FAST",
                "REPRO_CHECKPOINT", "REPRO_JOBS", "REPRO_CACHE_DIR"):
        monkeypatch.delenv(var, raising=False)
    return monkeypatch


def _event(ev: str, **fields) -> dict:
    return {"ev": ev, "t": 1.0, "pid": 42, **fields}


# ---------------------------------------------------------------------- #
# Recorder plumbing                                                       #
# ---------------------------------------------------------------------- #

class TestRecorderPlumbing:
    def test_disabled_by_default(self, clean_env):
        assert as_recorder(None) is NULL_RECORDER
        assert not NULL_RECORDER.enabled
        NULL_RECORDER.emit("sweep_start", anything="goes")  # inert no-op

    def test_env_enables(self, clean_env, tmp_path):
        clean_env.setenv("REPRO_TELEMETRY", str(tmp_path))
        rec = as_recorder(None)
        assert rec.enabled
        assert rec.path == str(tmp_path / "telemetry.jsonl")

    def test_path_resolution(self, tmp_path):
        assert telemetry_path(str(tmp_path)) == str(
            tmp_path / "telemetry.jsonl")
        explicit = str(tmp_path / "custom.jsonl")
        assert telemetry_path(explicit) == explicit

    def test_emit_writes_one_valid_line_per_event(self, tmp_path):
        rec = TelemetryRecorder(str(tmp_path / "t.jsonl"))
        rec.emit("cache_hit", source="run")
        rec.emit("cache_miss", source="sweep")
        rec.close()
        events = load_events(rec.path)
        assert [e["ev"] for e in events] == ["cache_hit", "cache_miss"]
        for event in events:
            validate_event(event)

    def test_unwritable_log_never_raises(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        rec = TelemetryRecorder(str(blocker / "t.jsonl"))
        rec.emit("cache_hit", source="run")
        assert rec.dropped == 1

    def test_load_tolerates_truncated_tail_and_garbage(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = json.dumps(_event("cache_hit", source="run"))
        with open(path, "w") as fh:
            fh.write(good + "\n")
            fh.write("not json at all\n")
            fh.write(good + "\n")
            fh.write('{"ev": "cache_mi')  # killed mid-append
        events = load_events(str(path))
        assert len(events) == 2
        assert load_events(str(tmp_path / "missing.jsonl")) == []


# ---------------------------------------------------------------------- #
# Schema                                                                  #
# ---------------------------------------------------------------------- #

class TestEventSchema:
    def test_every_sweep_event_validates(self, clean_env, tmp_path):
        log = str(tmp_path / "t.jsonl")
        run_specs(_specs(3), SCALE, CYCLES, jobs=2, telemetry=log)
        events = load_events(log)
        assert events, "an enabled sweep must emit events"
        for event in events:
            validate_event(event)
        kinds = {e["ev"] for e in events}
        assert {"sweep_start", "spec_queued", "spec_started",
                "spec_exec", "spec_finished", "sweep_end"} <= kinds

    def test_per_spec_lifecycle_is_complete(self, clean_env, tmp_path):
        log = str(tmp_path / "t.jsonl")
        run_specs(_specs(3), SCALE, CYCLES, jobs=1, telemetry=log)
        events = load_events(log)
        for index in range(3):
            mine = [e for e in events if e.get("index") == index]
            assert [e["ev"] for e in mine] == [
                "spec_queued", "spec_started", "spec_exec", "spec_finished"]
        finished = [e for e in events if e["ev"] == "spec_finished"]
        assert all(e["source"] == "simulated" for e in finished)
        assert all(e["wall_s"] >= 0 for e in finished)

    def test_spec_exec_carries_profile_snapshot(self, clean_env, tmp_path):
        log = str(tmp_path / "t.jsonl")
        run_specs(_specs(1), SCALE, CYCLES, jobs=1, telemetry=log)
        execs = [e for e in load_events(log) if e["ev"] == "spec_exec"]
        assert len(execs) == 1
        profile = execs[0]["profile"]
        assert profile["phase_seconds"]["measure"] >= 0
        assert profile["phase_seconds"]["warm"] >= 0
        assert profile["counters"]["data_accesses"] > 0
        assert profile["gauges"]["retired"] > 0
        assert execs[0]["pid"] == os.getpid()  # jobs=1 runs in-process

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError, match="unknown event type"):
            validate_event(_event("spec_vanished"))

    def test_missing_required_field_rejected(self):
        with pytest.raises(ValueError, match="missing required field"):
            validate_event(_event("spec_queued", sweep="1-1"))  # no index

    def test_stray_field_rejected(self):
        with pytest.raises(ValueError, match="unexpected fields"):
            validate_event(_event("cache_hit", source="run", vibes="good"))

    def test_missing_envelope_rejected(self):
        event = _event("cache_hit", source="run")
        del event["pid"]
        with pytest.raises(ValueError, match="envelope"):
            validate_event(event)

    def test_schema_documents_all_emitted_types(self):
        # The schema table is the documentation; keep it covering the
        # full event vocabulary (additions must extend it).
        assert set(EVENT_SCHEMA) == {
            "sweep_start", "sweep_end", "checkpoint_resume", "spec_queued",
            "spec_started", "spec_exec", "spec_retry", "spec_finished",
            "spec_failed", "shm_create", "shm_attach", "shm_cleanup",
            "cache_hit", "cache_miss", "cache_store",
            "svc_request", "svc_answer", "svc_shed", "svc_coalesce",
            "svc_sim_fail", "svc_breaker", "contention_point",
            "island_point"}


# ---------------------------------------------------------------------- #
# Aggregation math                                                        #
# ---------------------------------------------------------------------- #

class TestAggregation:
    def test_percentile_nearest_rank(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0
        assert percentile([4.0, 1.0, 3.0, 2.0], 95) == 4.0
        assert percentile([7.0], 50) == 7.0
        assert percentile([], 50) == 0.0
        # 20 values: p95 rank = ceil(0.95*20) = 19 -> the 19th smallest.
        values = [float(i) for i in range(1, 21)]
        assert percentile(values, 95) == 19.0

    def test_summary_matches_hand_computed_fixture(self):
        # One sweep, 2 workers, 10s wall.  Four specs: walls 1, 2, 3, 4
        # simulated; one checkpoint recall; one failure after a retry.
        events = [
            _event("sweep_start", sweep="s", n_specs=6, jobs=2, scale=0.01,
                   default_cycles=5000),
            _event("checkpoint_resume", sweep="s", recalled=1),
            _event("spec_finished", sweep="s", index=0, attempts=0,
                   source="checkpoint", wall_s=0.0),
        ]
        for i, wall in enumerate([1.0, 2.0, 3.0, 4.0], start=1):
            events.append(_event("spec_finished", sweep="s", index=i,
                                 attempts=0, source="simulated",
                                 wall_s=wall))
        events += [
            _event("spec_retry", sweep="s", index=5, attempt=1,
                   kind="error", message="boom"),
            _event("spec_failed", sweep="s", index=5, kind="error",
                   attempts=2, message="boom"),
            _event("cache_hit", source="sweep"),
            _event("cache_store", source="sweep"),
            _event("cache_store", source="salvage"),
            _event("sweep_end", sweep="s", completed=5, failed=1,
                   wall_s=10.0),
        ]
        for event in events:
            validate_event(event)
        summary = summarize(events)
        assert summary["sweeps"] == 1
        assert summary["specs"] == 6
        assert summary["simulated"] == 4
        assert summary["checkpoint_recalled"] == 1
        assert summary["failed"] == 1
        assert summary["retries"] == 1
        assert summary["retry_kinds"] == {"error": 1}
        # nearest-rank over [1, 2, 3, 4]: p50 -> 2, p95 -> 4.
        assert summary["spec_wall_p50"] == 2.0
        assert summary["spec_wall_p95"] == 4.0
        # busy 10s over 2 workers x 10s wall = 50% utilization.
        assert summary["busy_s"] == 10.0
        assert summary["capacity_s"] == 20.0
        assert summary["worker_utilization"] == 0.5
        assert summary["cache"] == {"hits": 1, "misses": 0, "stores": 2}
        assert summary["cache_by_source"]["salvage"]["stores"] == 1
        # The report renders without error and names the salvage source.
        assert "salvage" in telemetry.format_summary(summary)

    def test_summary_of_empty_log(self):
        summary = summarize([])
        assert summary["specs"] == 0
        assert summary["worker_utilization"] == 0.0
        assert summary["spec_wall_p50"] == 0.0


# ---------------------------------------------------------------------- #
# Overhead                                                                #
# ---------------------------------------------------------------------- #

@pytest.mark.slow
def test_enabled_overhead_is_bounded(clean_env, tmp_path):
    """Telemetry may cost a few events of I/O per spec, never hot-loop
    work: an instrumented sweep stays within a generous factor of the
    bare one (both in-process, workloads pre-built)."""
    from time import perf_counter

    specs = _specs(3)
    run_specs(specs, SCALE, CYCLES, jobs=1)  # warm workload/trace caches

    def timed(telemetry_arg):
        t0 = perf_counter()
        result = run_specs(specs, SCALE, CYCLES, jobs=1,
                           telemetry=telemetry_arg)
        return perf_counter() - t0, result

    bare_wall, bare = timed(None)
    telem_wall, telem = timed(str(tmp_path / "t.jsonl"))
    assert telem == bare
    # Generous bound: 2x + 0.5s absolute slack absorbs host noise while
    # still catching accidental per-access instrumentation (which would
    # be orders of magnitude, not percent).
    assert telem_wall <= bare_wall * 2.0 + 0.5, (
        f"telemetry overhead too high: {telem_wall:.3f}s vs "
        f"{bare_wall:.3f}s bare")


# ---------------------------------------------------------------------- #
# Concurrent writers                                                      #
# ---------------------------------------------------------------------- #

def _hammer(args):
    path, writer, n_events = args
    rec = TelemetryRecorder(path)
    payload = f"writer-{writer}-" + "x" * 512
    for i in range(n_events):
        rec.emit("cache_store", source=payload, index=i)
    rec.close()
    return writer


@pytest.mark.slow
def test_concurrent_writers_never_interleave(tmp_path):
    """N processes hammering one log: every line must parse and every
    event must arrive exactly once (O_APPEND + single-write atomicity)."""
    path = str(tmp_path / "t.jsonl")
    n_writers, n_events = 4, 200
    try:
        with futures.ProcessPoolExecutor(max_workers=n_writers) as pool:
            list(pool.map(_hammer,
                          [(path, w, n_events) for w in range(n_writers)]))
    except (OSError, ValueError) as exc:
        pytest.skip(f"no multiprocessing here: {exc}")
    with open(path) as fh:
        lines = fh.readlines()
    assert len(lines) == n_writers * n_events
    seen = set()
    for line in lines:
        event = json.loads(line)  # a torn line would fail to parse
        validate_event(event)
        seen.add((event["source"], event["index"]))
    assert len(seen) == n_writers * n_events


# ---------------------------------------------------------------------- #
# Cache provenance (the salvage-attribution regression)                   #
# ---------------------------------------------------------------------- #

class TestCacheProvenance:
    def test_run_and_sweep_sources_attributed(self, clean_env, tmp_path):
        log = str(tmp_path / "t.jsonl")
        spec = _specs(1)[0]
        exp = Experiment(scale=SCALE, measure_cycles=CYCLES,
                         cache_dir=str(tmp_path / "cache"), telemetry=log)
        exp.run(spec.config, "dss")       # miss + store via the run path
        exp2 = Experiment(scale=SCALE, measure_cycles=CYCLES,
                          cache_dir=str(tmp_path / "cache"), telemetry=log)
        exp2.run_many([spec])             # disk hit via the sweep path
        summary = summarize(load_events(log))
        by_source = summary["cache_by_source"]
        assert by_source["run"]["misses"] == 1
        assert by_source["run"]["stores"] == 1
        assert by_source["sweep"]["hits"] == 1

    def test_salvage_stores_are_attributed(self, clean_env, tmp_path):
        """Regression: after a SweepError, the completed results that
        run_many salvages into the cache were indistinguishable from
        ordinary stores in ``ResultCache.stats()``.  Telemetry must
        attribute them to the salvage path."""
        clean_env.setenv("REPRO_FAULTS", "exec@0x99")  # spec 0 never runs
        log = str(tmp_path / "t.jsonl")
        exp = Experiment(scale=SCALE, measure_cycles=CYCLES,
                         cache_dir=str(tmp_path / "cache"), telemetry=log)
        with pytest.raises(SweepError) as err:
            exp.run_many(_specs(3), jobs=1, retries=1, backoff=0.0)
        assert len(err.value.failures) == 1
        events = load_events(log)
        for event in events:
            validate_event(event)
        summary = summarize(events)
        # The two completed specs were salvaged — and say so.
        assert summary["cache_by_source"]["salvage"]["stores"] == 2
        assert summary["failed"] == 1
        assert summary["retries"] == 1
        # The lump-sum cache counters still agree on the totals.
        assert exp.cache_stats()["stores"] == 2

    def test_prefetch_surfaces_telemetry_summary(self, clean_env, tmp_path):
        log = str(tmp_path / "t.jsonl")
        exp = Experiment(scale=SCALE, measure_cycles=CYCLES,
                         use_cache=False, telemetry=log)
        exp.prefetch(_specs(2), jobs=1)
        summary = exp.telemetry_summary()
        assert summary is not None
        assert summary["simulated"] == 2
        # Disabled experiments report no summary rather than an empty one.
        bare = Experiment(scale=SCALE, measure_cycles=CYCLES,
                          use_cache=False)
        assert bare.telemetry_summary() is None
