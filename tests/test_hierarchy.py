"""Unit tests for the shared-L2 CMP hierarchy."""

import pytest

from repro.simulator.cacti import l2_hit_latency
from repro.simulator.hierarchy import (
    L1,
    L1X,
    L2,
    MEM,
    HierarchyParams,
    SharedL2Hierarchy,
    _CodePressure,
)

COLD = 0x4000_0000


def make(n_cores=2, l2_mb=1.0, **kw):
    return SharedL2Hierarchy(HierarchyParams(
        n_cores=n_cores, l2_mb=l2_mb, l2_nominal_mb=l2_mb, **kw))


class TestDataPath:
    def test_cold_miss_goes_to_memory(self):
        h = make()
        lat, level = h.data_access(0, COLD, False, 0.0)
        assert level == MEM
        assert lat >= h.params.mem_latency

    def test_second_access_hits_l1(self):
        h = make()
        h.data_access(0, COLD, False, 0.0)
        lat, level = h.data_access(0, COLD, False, 0.0)
        assert level == L1
        assert lat == h.params.l1_latency

    def test_l1_evicted_line_hits_l2(self):
        h = make()
        h.data_access(0, COLD, False, 0.0)
        h.l1d_caches[0].invalidate(COLD >> 6)
        lat, level = h.data_access(0, COLD, False, 0.0)
        assert level == L2
        assert lat >= h.l2_latency

    def test_clean_sibling_copy_served_by_l2(self):
        """A clean line in another core's L1 is an L2 hit, not a transfer."""
        h = make()
        h.data_access(0, COLD, False, 0.0)
        lat, level = h.data_access(1, COLD, False, 0.0)
        assert level == L2

    def test_dirty_sibling_copy_is_l1_transfer(self):
        h = make()
        h.data_access(0, COLD, True, 0.0)  # dirty in core 0's L1
        lat, level = h.data_access(1, COLD, False, 0.0)
        assert level == L1X
        assert lat == h.params.l1_transfer_latency

    def test_write_invalidates_sibling_copies(self):
        h = make()
        h.data_access(0, COLD, True, 0.0)
        h.data_access(1, COLD, True, 0.0)  # transfer + invalidate core 0
        assert (COLD >> 6) not in h.l1d_caches[0]

    def test_latency_derived_from_cacti(self):
        h = make(l2_mb=16.0)
        assert h.l2_latency == l2_hit_latency(16.0)

    def test_const_latency_override(self):
        h = make(l2_latency=4)
        assert h.l2_latency == 4

    def test_level_counters_sum_to_accesses(self):
        import random
        h = make()
        rng = random.Random(5)
        for _ in range(500):
            h.data_access(rng.randrange(2),
                          COLD + rng.randrange(1 << 22) // 64 * 64,
                          rng.random() < 0.3, 0.0)
        assert sum(h.stats.data_level_counts) == h.stats.data_accesses == 500


class TestBankQueueing:
    def test_same_bank_back_to_back_queues(self):
        h = make()
        line = COLD >> 6
        h.l2.access(line, False)  # make it an L2 hit
        h.l1d_caches[0].invalidate(line)
        lat1, _ = h.data_access(0, COLD, False, 100.0)
        h.l1d_caches[0].invalidate(line)
        lat2, _ = h.data_access(0, COLD, False, 100.0)
        assert lat2 > lat1  # second access waits for the bank
        assert h.stats.l2_queued_accesses == 1

    def test_different_banks_do_not_queue(self):
        h = make()
        a, b = COLD, COLD + 64  # adjacent lines -> different banks
        for addr in (a, b):
            h.l2.access(addr >> 6, False)
        lat1, _ = h.data_access(0, a, False, 100.0)
        lat2, _ = h.data_access(1, b, False, 100.0)
        assert lat2 == lat1
        assert h.stats.l2_queue_delay == 0

    def test_bank_frees_over_time(self):
        h = make()
        line = COLD >> 6
        h.l2.access(line, False)
        h.l1d_caches[0].invalidate(line)
        h.data_access(0, COLD, False, 100.0)
        h.l1d_caches[0].invalidate(line)
        lat, _ = h.data_access(0, COLD, False, 500.0)  # long after
        assert lat == h.l2_latency


class TestInstructionPath:
    FP = (0x100000, 64)  # base, lines (4KB region)

    def test_small_footprint_never_stalls(self):
        h = make()
        total = 0
        for _ in range(50):
            exposed, level = h.instr_block(0, self.FP[0], 32, 2, True, 0.0)
            total += exposed
        # 32 lines fit the 32KB L1I: only cheap jump bubbles.
        assert total <= 50 * h.params.jump_bubble_cycles

    def test_thrashing_footprint_pays_l2(self):
        h = make()
        # Alternate among many large regions: far beyond L1I capacity.
        regions = [(0x100000 + i * 0x10000, 256) for i in range(8)]
        exposed = 0
        for i in range(200):
            base, lines = regions[i % len(regions)]
            e, _ = h.instr_block(0, base, lines, 2, True, 0.0)
            exposed += e
        assert exposed > 200 * h.params.jump_bubble_cycles

    def test_disabling_stream_buffers_raises_sequential_cost(self):
        on = make()
        off = make(stream_buffers=False)
        regions = [(0x100000 + i * 0x10000, 256) for i in range(8)]
        totals = {}
        for label, h in (("on", on), ("off", off)):
            t = 0
            for i in range(200):
                base, lines = regions[i % len(regions)]
                e, _ = h.instr_block(0, base, lines, 8, i % 4 == 0, 0.0)
                t += e
            totals[label] = t
        assert totals["off"] > totals["on"]


class TestStridePrefetch:
    def test_streaming_misses_become_l2_class(self):
        h = make(stride_prefetch=True, l2_mb=0.25)
        base = COLD
        levels = []
        for i in range(64):
            lat, level = h.data_access(0, base + i * 64, False, 0.0)
            levels.append(level)
        # After the detector locks on, misses are covered at L2 cost.
        assert MEM in levels[:3]
        assert levels[-1] == L2
        assert h.stats.prefetch_covered > 40

    def test_random_pattern_gets_no_coverage(self):
        import random
        h = make(stride_prefetch=True, l2_mb=0.25)
        rng = random.Random(9)
        for _ in range(200):
            h.data_access(0, COLD + rng.randrange(1 << 24) // 64 * 64,
                          False, 0.0)
        assert h.stats.prefetch_covered < 5


class TestCodePressure:
    def test_within_capacity_no_eviction(self):
        cp = _CodePressure(100)
        assert cp.touch(0x1000, 40) == 0.0
        assert cp.touch(0x2000, 40) == 0.0

    def test_over_capacity_fraction(self):
        cp = _CodePressure(100)
        cp.touch(0x1000, 100)
        frac = cp.touch(0x2000, 100)
        assert frac == pytest.approx(0.5)

    def test_retouch_refreshes_not_grows(self):
        cp = _CodePressure(100)
        cp.touch(0x1000, 60)
        cp.touch(0x1000, 60)
        assert cp.touch(0x2000, 30) == 0.0  # total 90 <= 100

    def test_old_regions_expire(self):
        cp = _CodePressure(10)
        for i in range(20):
            cp.touch(0x1000 + i * 0x100, 10)
        # Window is bounded at 4x capacity.
        assert cp.touch(0x9000, 1) <= 1.0 - 10 / 41


class TestL2BanksValidation:
    def test_powers_of_two_accepted(self):
        for banks in (1, 2, 4, 8, 64):
            h = make(l2_banks=banks)
            assert h.params.l2_banks == banks

    def test_zero_rejected(self):
        # 0 & -1 == 0, so a plain mask test would let it through.
        with pytest.raises(ValueError, match="power of two"):
            make(l2_banks=0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            make(l2_banks=-4)

    def test_non_power_of_two_rejected(self):
        for banks in (3, 6, 12, 100):
            with pytest.raises(ValueError, match="power of two"):
                make(l2_banks=banks)

    def test_non_int_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            make(l2_banks=4.0)


def _random_pattern(seed, n=600, cores=2):
    import random
    rng = random.Random(seed)
    return [(rng.randrange(cores),
             COLD + rng.randrange(1 << 20) // 64 * 64,
             rng.random() < 0.4) for _ in range(n)]


def _l1_state(h):
    """Full L1 state including LRU order (dicts are insertion-ordered)."""
    return [[list(s.items()) for s in cache._sets] for cache in h.l1d_caches]


def _l2_state(h):
    return [list(s.items()) for s in h.l2._sets]


class TestWarm:
    def test_warm_matches_access_state(self):
        """Functional warming leaves the same cache state as timed access."""
        import random
        rng = random.Random(3)
        pattern = [(rng.randrange(2), COLD + rng.randrange(1 << 20) // 64 * 64,
                    rng.random() < 0.4) for _ in range(400)]
        a, b = make(), make()
        for core, addr, wr in pattern:
            a.data_access(core, addr, wr, 0.0)
            b.warm_data(core, addr, wr)
        for line in {addr >> 6 for _, addr, _ in pattern}:
            assert (line in a.l2) == (line in b.l2)
            for c in range(2):
                assert ((line in a.l1d_caches[c])
                        == (line in b.l1d_caches[c]))

    def test_warm_block_matches_warm_data_exactly(self):
        """The batched warm loop lands byte-for-byte where warm_data does.

        Compares full per-set dict contents *in insertion (LRU) order*,
        the owner map, and the L2 — not just membership — because the
        measured phase's victim choices depend on that order.
        """
        pattern = _random_pattern(11)
        a, b = make(), make()
        for core, addr, wr in pattern:
            a.warm_data(core, addr, wr)
        addrs = [p[1] for p in pattern]
        flags = [0x1 if p[2] else 0 for p in pattern]
        # Feed warm_block per-core runs exactly as Machine._warm does.
        i = 0
        while i < len(pattern):
            j = i
            core = pattern[i][0]
            while j < len(pattern) and pattern[j][0] == core:
                j += 1
            b.warm_block(core, addrs, flags, i, j)
            i = j
        assert _l1_state(a) == _l1_state(b)
        assert _l2_state(a) == _l2_state(b)
        assert a._l1_owners == b._l1_owners

    def test_capture_restore_replays_identically(self):
        """A captured warm state restored onto a fresh hierarchy matches
        the original: L1 sets (with LRU order), owners, and the L2 —
        the warm-memo fast path in Machine._warm relies on this."""
        pattern = _random_pattern(12)
        a = make()
        a.begin_warm_log()
        addrs = [p[1] for p in pattern]
        flags = [0x1 if p[2] else 0 for p in pattern]
        i = 0
        while i < len(pattern):
            j = i
            core = pattern[i][0]
            while j < len(pattern) and pattern[j][0] == core:
                j += 1
            a.warm_block(core, addrs, flags, i, j)
            i = j
        state = a.capture_warm_state()
        b = make()
        b.restore_warm_state(state)
        assert _l1_state(a) == _l1_state(b)
        assert _l2_state(a) == _l2_state(b)
        assert a._l1_owners == b._l1_owners

    def test_restore_does_not_alias_captured_state(self):
        """Mutating a restored hierarchy must not corrupt the memo entry."""
        pattern = _random_pattern(13, n=200)
        a = make()
        a.begin_warm_log()
        addrs = [p[1] for p in pattern]
        flags = [0x1 if p[2] else 0 for p in pattern]
        a.warm_block(0, addrs, flags, 0, len(pattern))
        state = a.capture_warm_state()
        b = make()
        b.restore_warm_state(state)
        before = [list(s.items()) for s in state[0][0]]
        for core, addr, wr in _random_pattern(14, n=200):
            b.data_access(core, addr, wr, 0.0)
        assert [list(s.items()) for s in state[0][0]] == before
