"""Tests for B+-tree deletion and rebalancing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.btree import BTreeIndex
from repro.simulator.addresses import AddressSpace


def make_tree(order=4):
    return BTreeIndex(AddressSpace(), "idx", order=order)


class TestDelete:
    def test_delete_present(self):
        t = make_tree()
        t.insert(1, "a")
        assert t.delete(1) is True
        assert t.search(1) is None
        assert t.n_entries == 0

    def test_delete_absent(self):
        t = make_tree()
        t.insert(1, "a")
        assert t.delete(2) is False
        assert t.n_entries == 1

    def test_delete_from_deep_tree(self):
        t = make_tree(order=4)
        for k in range(200):
            t.insert(k, k)
        for k in range(0, 200, 2):
            assert t.delete(k)
        t.check_invariants()
        for k in range(200):
            expect = None if k % 2 == 0 else k
            assert t.search(k) == expect

    def test_delete_everything_collapses_root(self):
        t = make_tree(order=4)
        for k in range(100):
            t.insert(k, k)
        assert t.height > 1
        for k in range(100):
            assert t.delete(k)
        assert t.n_entries == 0
        assert t.height == 1
        assert list(t.items()) == []

    def test_range_scan_after_merges(self):
        t = make_tree(order=4)
        keys = list(range(300))
        random.Random(4).shuffle(keys)
        for k in keys:
            t.insert(k, k)
        rng = random.Random(5)
        removed = set(rng.sample(range(300), 180))
        for k in removed:
            t.delete(k)
        t.check_invariants()
        got = [k for k, _ in t.range(0, 300)]
        assert got == sorted(set(range(300)) - removed)

    def test_reinsert_after_delete(self):
        t = make_tree(order=4)
        for k in range(50):
            t.insert(k, k)
        for k in range(50):
            t.delete(k)
        for k in range(50):
            t.insert(k, k + 1000)
        t.check_invariants()
        assert t.search(25) == 1025


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["ins", "del"]), st.integers(0, 80)),
    max_size=300,
))
def test_btree_delete_matches_dict(ops):
    """Property: interleaved insert/delete tracks a dict, with invariants
    intact after every batch."""
    t = make_tree(order=4)
    reference = {}
    for op, k in ops:
        if op == "ins":
            t.insert(k, k * 3)
            reference[k] = k * 3
        else:
            expected = k in reference
            assert t.delete(k) == expected
            reference.pop(k, None)
    t.check_invariants()
    assert list(t.items()) == sorted(reference.items())
    for k, v in reference.items():
        assert t.search(k) == v
