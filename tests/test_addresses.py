"""Unit tests for the synthetic address space."""

import pytest

from repro.simulator.addresses import (
    LINE_SIZE,
    PAGE_SIZE,
    AddressSpace,
    CodeRegion,
    line_base,
    line_of,
    page_of,
)


class TestGeometry:
    def test_line_of(self):
        assert line_of(0) == 0
        assert line_of(63) == 0
        assert line_of(64) == 1

    def test_line_base(self):
        assert line_base(130) == 128

    def test_page_of(self):
        assert page_of(PAGE_SIZE - 1) == 0
        assert page_of(PAGE_SIZE) == 1


class TestAllocator:
    def test_regions_do_not_overlap(self):
        sp = AddressSpace()
        regions = [sp.alloc(f"r{i}", 1000 + 37 * i) for i in range(20)]
        for a, b in zip(regions, regions[1:]):
            assert a.end <= b.base

    def test_page_alignment(self):
        sp = AddressSpace()
        r = sp.alloc("r", 100)
        assert r.base % PAGE_SIZE == 0

    def test_alloc_pages(self):
        sp = AddressSpace()
        r = sp.alloc_pages("t", 3)
        assert r.size == 3 * PAGE_SIZE

    def test_rejects_bad_size(self):
        sp = AddressSpace()
        with pytest.raises(ValueError):
            sp.alloc("r", 0)

    def test_rejects_bad_alignment(self):
        sp = AddressSpace()
        with pytest.raises(ValueError):
            sp.alloc("r", 10, align=3)

    def test_find(self):
        sp = AddressSpace()
        r1 = sp.alloc("a", 100)
        r2 = sp.alloc("b", 100)
        assert sp.find(r1.base + 50) is r1
        assert sp.find(r2.base) is r2
        assert sp.find(r2.end + PAGE_SIZE) is None

    def test_allocated_bytes(self):
        sp = AddressSpace()
        sp.alloc("a", 100)
        sp.alloc("b", 200)
        assert sp.allocated_bytes == 300


class TestRegion:
    def test_addr_bounds(self):
        sp = AddressSpace()
        r = sp.alloc("r", 128)
        assert r.addr(0) == r.base
        assert r.addr(127) == r.base + 127
        with pytest.raises(ValueError):
            r.addr(128)
        with pytest.raises(ValueError):
            r.addr(-1)

    def test_lines_rounds_up(self):
        sp = AddressSpace()
        r = sp.alloc("r", LINE_SIZE + 1)
        assert r.lines == 2

    def test_contains(self):
        sp = AddressSpace()
        r = sp.alloc("r", 64)
        assert r.contains(r.base)
        assert not r.contains(r.end)


class TestCodeRegion:
    def test_fetch_advances_and_wraps(self):
        sp = AddressSpace()
        r = sp.alloc("code", 4 * LINE_SIZE)
        cr = CodeRegion(region=r, instructions_per_line=16)
        first, n, total = cr.fetch_lines(32)  # 2 lines
        assert first == r.base and n == 2 and total == 4
        first, n, _ = cr.fetch_lines(32)
        assert first == r.base + 2 * LINE_SIZE
        first, n, _ = cr.fetch_lines(32)  # wraps to line 0
        assert first == r.base

    def test_fetch_minimum_one_line(self):
        sp = AddressSpace()
        r = sp.alloc("code", 4 * LINE_SIZE)
        cr = CodeRegion(region=r)
        _, n, _ = cr.fetch_lines(1)
        assert n == 1
