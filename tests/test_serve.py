"""The async design-query service: tiers, provenance, and robustness.

The contracts under test (DESIGN.md §12):

- **Coalescing** — k identical concurrent queries cost exactly one
  backend computation and yield k identical answers.
- **Deadlines** — a request never waits past its budget: it falls back
  to the model tier while the shared computation survives for later
  requests.
- **Admission control** — requests beyond ``max_pending`` are shed with
  a typed :class:`Overloaded` carrying retry-after advice.
- **Bit-consistency** — a degraded (model-tier) answer carries exactly
  the fields a direct ``CalibratedModel.predict`` call returns, and a
  simulated answer exactly the fields of a direct ``Experiment.run``.
- **Introspection** — every request appears in telemetry as schema-valid
  ``svc_*`` events, and ``stats()``/``health()`` report live state.

Everything here runs under a cleared ``REPRO_FAULTS`` (the CI chaos job
sets an ambient plan for the whole suite); the injected-fault behaviour
lives in ``test_serve_chaos.py``.
"""

import asyncio
import json
import threading

import pytest

from repro.core import telemetry
from repro.core.experiment import Experiment
from repro.serve import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    DesignQuery,
    DesignService,
    Overloaded,
)
from repro.serve.loadtest import (
    LOAD_SCHEMA,
    format_load,
    run_load,
    validate_load,
)
from repro.serve.query import model_payload, simulated_payload



SCALE = 0.01
CYCLES = 5_000


@pytest.fixture(autouse=True)
def no_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


def _experiment(**kwargs) -> Experiment:
    kwargs.setdefault("use_cache", False)
    return Experiment(scale=SCALE, measure_cycles=CYCLES,
                      **kwargs)


def _service(model, exp=None, **kwargs) -> DesignService:
    return DesignService(_experiment() if exp is None else exp, model,
                         **kwargs)


class FakeClock:
    """A hand-advanced monotonic clock for deterministic breaker tests."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestDesignQuery:
    def test_validation(self):
        with pytest.raises(ValueError):
            DesignQuery("xx")
        with pytest.raises(ValueError):
            DesignQuery("fc", kind="olap")
        with pytest.raises(ValueError):
            DesignQuery("fc", regime="idle")
        with pytest.raises(ValueError):
            DesignQuery("fc", cores=0)
        with pytest.raises(ValueError):
            DesignQuery("fc", banks=3)
        with pytest.raises(ValueError):
            DesignQuery("fc", l2_mb=0.0)

    def test_key_and_label(self):
        q = DesignQuery("lc", cores=8, l2_mb=4.0, banks=8, kind="dss",
                        regime="unsaturated")
        assert q.key() == ("lc", 8, 4.0, 8, "dss", "unsaturated")
        assert q.label == "lc/8c/4MB/8b/dss/unsaturated"

    def test_wire_round_trip_normalizes_types(self):
        q = DesignQuery.from_dict(
            {"camp": "fc", "cores": 4.0, "l2_mb": 2, "banks": "4"})
        assert q == DesignQuery("fc", cores=4, l2_mb=2.0, banks=4)
        assert DesignQuery.from_dict(q.to_dict()) == q

    def test_wire_rejects_junk(self):
        with pytest.raises(ValueError):
            DesignQuery.from_dict({"camp": "fc", "bogus": 1})
        with pytest.raises(ValueError):
            DesignQuery.from_dict({"cores": 4})
        with pytest.raises(ValueError):
            DesignQuery.from_dict(["fc"])
        with pytest.raises(ValueError):
            DesignQuery.from_dict({"camp": "fc", "cores": "many"})


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = FakeClock()
        transitions = []
        breaker = CircuitBreaker(
            failure_threshold=kwargs.pop("failure_threshold", 2),
            cooldown_s=kwargs.pop("cooldown_s", 5.0), clock=clock,
            on_transition=lambda s, f: transitions.append(s), **kwargs)
        return breaker, clock, transitions

    def test_opens_at_threshold(self):
        breaker, _, transitions = self._breaker()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert transitions == [OPEN]
        assert breaker.opens == 1

    def test_success_resets_the_count(self):
        breaker, _, _ = self._breaker()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_admits_one_probe(self):
        breaker, clock, transitions = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # probe outstanding: everyone else waits
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert transitions == [OPEN, HALF_OPEN, CLOSED]

    def test_failed_probe_reopens(self):
        breaker, clock, _ = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 2
        assert not breaker.allow()  # fresh cooldown
        clock.advance(5.0)
        assert breaker.allow()

    def test_snapshot(self):
        breaker, clock, _ = self._breaker()
        assert breaker.snapshot()["state"] == CLOSED
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(2.0)
        snap = breaker.snapshot()
        assert snap["state"] == OPEN
        assert snap["opens"] == 1
        assert snap["cooldown_remaining_s"] == pytest.approx(3.0)

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=0.0)


@pytest.mark.slow
class TestTiersAndProvenance:
    def test_simulated_answer_bit_identical_to_direct_run(self, serve_model):
        q = DesignQuery("lc", cores=2, l2_mb=1.0, banks=4, kind="dss")

        async def go():
            async with _service(serve_model) as svc:
                return svc, await svc.submit(q)

        svc, answer = asyncio.run(go())
        assert answer.tier == "simulated"
        assert answer.confidence == "confirmed"
        assert not answer.degraded
        assert svc.exp.sim_runs == 1
        direct = _experiment().run(q.config(SCALE), q.kind, q.regime)
        assert answer.payload == simulated_payload(direct)

    def test_cache_tier_recalls_prior_measurements(self, serve_model):
        q = DesignQuery("fc", cores=2, l2_mb=1.0, banks=4, kind="dss")
        exp = _experiment()
        exp.run(q.config(SCALE), q.kind, q.regime)
        assert exp.sim_runs == 1

        async def go():
            async with _service(serve_model, exp=exp) as svc:
                return await svc.submit(q)

        answer = asyncio.run(go())
        assert answer.tier == "cache"
        assert answer.confidence == "confirmed"
        assert exp.sim_runs == 1  # recalled, not re-simulated

    def test_degraded_answer_bit_consistent_with_model(self, serve_model):
        q = DesignQuery("fc", cores=4, l2_mb=2.0, banks=4, kind="oltp")

        async def go():
            async with _service(serve_model) as svc:
                for _ in range(svc.breaker.failure_threshold):
                    svc.breaker.record_failure()
                return svc, await svc.submit(q)

        svc, answer = asyncio.run(go())
        assert answer.tier == "model"
        assert answer.degraded
        assert answer.confidence == "degraded"
        assert answer.note == "breaker-open"
        assert svc.exp.sim_runs == 0
        direct = serve_model.predict(q.config(SCALE), q.kind,
                                     q.regime)
        assert answer.payload == model_payload(direct)
        assert svc.health()["status"] == "degraded"

    def test_health_reports_ok_when_closed(self, serve_model):
        async def go():
            async with _service(serve_model) as svc:
                return svc.health()

        health = asyncio.run(go())
        assert health["status"] == "ok"
        assert health["breaker"] == CLOSED
        assert health["model_fitted"]


@pytest.mark.slow
class TestCoalescing:
    def test_k_identical_queries_one_computation(self, serve_model):
        q = DesignQuery("lc", cores=4, l2_mb=1.0, banks=4, kind="dss")
        k = 5

        async def go():
            async with _service(serve_model) as svc:
                answers = await asyncio.gather(
                    *(svc.submit(q) for _ in range(k)))
                return svc, answers

        svc, answers = asyncio.run(go())
        assert svc.exp.sim_runs == 1  # one backend computation
        payloads = [a.payload for a in answers]
        assert all(p == payloads[0] for p in payloads)  # k identical
        assert all(a.tier == "simulated" for a in answers)
        assert sum(a.coalesced for a in answers) == k - 1
        assert len({a.req for a in answers}) == k  # each req keeps its id
        stats = svc.stats()
        assert stats["requests"] == k
        assert stats["coalesced"] == k - 1
        assert stats["sim"]["enqueued"] == 1

    def test_distinct_queries_do_not_coalesce(self, serve_model):
        qs = [DesignQuery("lc", cores=4, l2_mb=mb, banks=4, kind="dss")
              for mb in (1.0, 2.0)]

        async def go():
            async with _service(serve_model) as svc:
                answers = await asyncio.gather(*(svc.submit(q) for q in qs))
                return svc, answers

        svc, answers = asyncio.run(go())
        assert svc.exp.sim_runs == 2
        assert not any(a.coalesced for a in answers)


class _GatedSim:
    """Blocks the service's simulation thread until released."""

    def __init__(self, monkeypatch):
        self.release = threading.Event()
        original = DesignService._simulate_blocking

        def gated(service, seq, spec):
            assert self.release.wait(10.0), "gated simulation leaked"
            return original(service, seq, spec)

        monkeypatch.setattr(DesignService, "_simulate_blocking", gated)


@pytest.mark.slow
class TestDeadlinesAndOverload:
    def test_deadline_falls_back_to_model_and_computation_survives(
            self, serve_model, monkeypatch):
        gate = _GatedSim(monkeypatch)
        q = DesignQuery("fc", cores=4, l2_mb=1.0, banks=4, kind="dss")

        async def go():
            async with _service(serve_model) as svc:
                first = await svc.submit(q, deadline_s=0.05)
                gate.release.set()
                second = await svc.submit(q)
                return svc, first, second

        svc, first, second = asyncio.run(go())
        assert first.tier == "model"
        assert first.note == "deadline"
        assert not first.degraded  # the service itself is healthy
        # The shielded computation survived the deadline: the follow-up
        # reuses it (in-flight coalesce or memo) without re-simulating.
        assert second.tier in ("simulated", "cache")
        assert svc.exp.sim_runs == 1
        assert svc.stats()["deadline_fallbacks"] == 1

    def test_overload_sheds_with_typed_rejection(self, serve_model,
                                                 monkeypatch):
        gate = _GatedSim(monkeypatch)
        q1 = DesignQuery("lc", cores=2, l2_mb=2.0, banks=4, kind="dss")
        q2 = DesignQuery("fc", cores=2, l2_mb=2.0, banks=4, kind="dss")

        async def go():
            async with _service(serve_model, max_pending=1) as svc:
                blocked = asyncio.create_task(svc.submit(q1))
                while svc.stats()["pending"] < 1:
                    await asyncio.sleep(0.001)
                with pytest.raises(Overloaded) as excinfo:
                    await svc.submit(q2)
                gate.release.set()
                answer = await blocked
                return svc, excinfo.value, answer

        svc, err, answer = asyncio.run(go())
        assert err.retry_after_s > 0
        assert err.pending == 1
        assert answer.tier == "simulated"
        stats = svc.stats()
        assert stats["shed"] == 1
        assert stats["requests"] == 1  # the shed request was never admitted

    def test_full_sim_queue_degrades_to_model_not_blocking(
            self, serve_model, monkeypatch):
        gate = _GatedSim(monkeypatch)
        qs = [DesignQuery("lc", cores=2, l2_mb=mb, banks=4, kind="dss")
              for mb in (1.0, 2.0, 4.0)]

        async def go():
            async with _service(serve_model, sim_queue_depth=1,
                                sim_workers=1) as svc:
                tasks = []
                for q in qs:
                    tasks.append(asyncio.create_task(svc.submit(q)))
                    await asyncio.sleep(0.01)  # deterministic arrival order
                gate.release.set()
                answers = await asyncio.gather(*tasks)
                return svc, answers

        svc, answers = asyncio.run(go())
        # Worker holds q1, the depth-1 queue holds q2; q3 must not block.
        assert [a.tier for a in answers[:2]] == ["simulated", "simulated"]
        assert answers[2].tier == "model"
        assert answers[2].note == "sim-queue-full"
        assert not answers[2].degraded
        assert svc.stats()["sim"]["rejected_full"] == 1


@pytest.mark.slow
class TestServiceTelemetry:
    def test_requests_emit_schema_valid_events(self, serve_model, tmp_path,
                                               monkeypatch):
        gate = _GatedSim(monkeypatch)
        log = str(tmp_path / "svc.jsonl")
        exp = _experiment(telemetry=log)
        q = DesignQuery("lc", cores=2, l2_mb=1.0, banks=4, kind="dss")
        q_other = DesignQuery("fc", cores=2, l2_mb=1.0, banks=4,
                              kind="dss")

        async def go():
            async with _service(serve_model, exp=exp,
                                max_pending=2) as svc:
                gate.release.set()
                await asyncio.gather(svc.submit(q), svc.submit(q))
                gate.release.clear()
                blocked = asyncio.create_task(svc.submit(q_other))
                while svc.stats()["pending"] < 1:
                    await asyncio.sleep(0.001)
                hold = asyncio.create_task(svc.submit(
                    DesignQuery("fc", cores=4, l2_mb=4.0, banks=4,
                                kind="dss")))
                while svc.stats()["pending"] < 2:
                    await asyncio.sleep(0.001)
                with pytest.raises(Overloaded):
                    await svc.submit(q_other)
                gate.release.set()
                await asyncio.gather(blocked, hold)

        asyncio.run(go())
        events = telemetry.load_events(log)
        kinds = {e["ev"] for e in events}
        assert {"svc_request", "svc_answer", "svc_coalesce",
                "svc_shed"} <= kinds
        summary = telemetry.summarize_service(events)
        assert summary["requests"] == 4
        assert summary["answers"] == 4
        assert summary["coalesced"] == 1
        assert summary["shed"] == 1
        assert summary["answers_by_tier"]["simulated"] == 4
        text = telemetry.format_service_summary(summary)
        assert "requests" in text and "shed" in text


@pytest.mark.slow
class TestLoadTest:
    TINY = {
        "scale": SCALE,
        "clients": 3,
        "requests_per_client": 4,
        "deadline_s": 0.5,
        "max_pending": 4,
        "sim_queue_depth": 1,
    }

    def test_end_to_end_snapshot(self, serve_model, tmp_path):
        out = tmp_path / "LOAD.json"
        record = run_load(out_path=str(out), config=dict(self.TINY),
                          exp=_experiment(), model=serve_model)
        assert record["schema"] == LOAD_SCHEMA
        load = record["load"]
        assert load["issued"] == 12
        assert load["answered"] + load["shed"] == load["issued"]
        assert (load["latency_p50_s"] <= load["latency_p95_s"]
                <= load["latency_p99_s"])
        on_disk = json.loads(out.read_text())
        assert on_disk == record
        text = format_load(record)
        assert "p95" in text and "issued" in text

    def test_validation_gates_conservation_and_ordering(self, serve_model,
                                                        tmp_path):
        record = run_load(out_path=None, config=dict(self.TINY),
                          exp=_experiment(), model=serve_model)
        validate_load(record)
        broken = json.loads(json.dumps(record))
        broken["load"]["shed"] += 1
        with pytest.raises(ValueError, match="conservation"):
            validate_load(broken)
        broken = json.loads(json.dumps(record))
        broken["load"]["latency_p50_s"] = 99.0
        with pytest.raises(ValueError, match="percentiles"):
            validate_load(broken)
        broken = json.loads(json.dumps(record))
        broken["schema"] = "repro-load-v0"
        with pytest.raises(ValueError, match="schema"):
            validate_load(broken)
