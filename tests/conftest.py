"""Shared fixtures for the service-tier suites.

The serve tests need a calibrated analytical model; fitting one runs the
pinned calibration grid through the simulator (seconds even at the tiny
test scale), so a single session-scoped model is fitted once — under a
cleared ``REPRO_FAULTS``, because the CI chaos job runs the whole suite
with an ambient fault plan and calibration must stay deterministic —
and shared by ``test_serve.py`` / ``test_serve_chaos.py``.
"""

import pytest

from repro.core.experiment import Experiment

#: The serve suites' study coordinates (same as the explore tests: tiny
#: scale, short window — seconds per calibration, milliseconds per sim).
SCALE = 0.01
CYCLES = 5_000


@pytest.fixture(scope="session")
def serve_model():
    """A model calibrated once at the serve-test scale."""
    from repro.model import calibrate

    mp = pytest.MonkeyPatch()
    mp.delenv("REPRO_FAULTS", raising=False)
    try:
        exp = Experiment(scale=SCALE, measure_cycles=CYCLES,
                         use_cache=False)
        return calibrate.fit(exp)
    finally:
        mp.undo()
