"""Unit tests for query operators, checked against naive recomputation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, PageLayout, Schema
from repro.db.exec import (
    AggSpec,
    Filter,
    HashAggregate,
    HashJoin,
    IndexLookup,
    IndexScan,
    Limit,
    Map,
    NestedLoopJoin,
    Project,
    SeqScan,
    Sort,
    StreamAggregate,
    TopN,
)
from repro.db.types import float64, int64


def make_db(rows=200, layout=PageLayout.NSM):
    db = Database()
    s = Schema("t", [int64("id"), int64("grp"), float64("v")])
    heap = db.catalog.create_table(s, layout=layout)
    for i in range(rows):
        heap.append((i, i % 7, float(i) * 0.5))
    return db, heap


def ctx_of(db):
    return db.session("c0", traced=False).ctx


class TestScans:
    def test_seqscan_returns_all_rows(self):
        db, heap = make_db(100)
        rows = SeqScan(ctx_of(db), heap).execute()
        assert rows == [heap.get(i) for i in range(100)]

    def test_seqscan_range(self):
        db, heap = make_db(100)
        rows = SeqScan(ctx_of(db), heap, start=10, stop=20).execute()
        assert [r[0] for r in rows] == list(range(10, 20))

    def test_seqscan_pax_projection_same_rows(self):
        db, heap = make_db(100, layout=PageLayout.PAX)
        rows = SeqScan(ctx_of(db), heap, columns=["v"]).execute()
        assert len(rows) == 100

    def test_index_scan_range(self):
        db, heap = make_db(200)
        idx = db.catalog.create_btree_index("pk", "t", key=lambda r: r[0])
        rows = IndexScan(ctx_of(db), heap, idx, 50, 60).execute()
        assert [r[0] for r in rows] == list(range(50, 60))

    def test_index_lookup_hit_and_miss(self):
        db, heap = make_db(50)
        idx = db.catalog.create_btree_index("pk", "t", key=lambda r: r[0])
        ctx = ctx_of(db)
        assert IndexLookup(ctx, heap, idx, 7).execute() == [heap.get(7)]
        assert IndexLookup(ctx, heap, idx, 999).execute() == []


class TestFilterProject:
    def test_filter(self):
        db, heap = make_db(100)
        out = Filter(ctx_of(db), SeqScan(ctx_of(db), heap),
                     lambda r: r[1] == 3).execute()
        assert all(r[1] == 3 for r in out)
        assert len(out) == sum(1 for i in range(100) if i % 7 == 3)

    def test_project_columns_and_schema(self):
        db, heap = make_db(10)
        ctx = ctx_of(db)
        p = Project(ctx, SeqScan(ctx, heap), ["v", "id"])
        out = p.execute()
        assert out[3] == (1.5, 3)
        assert [c.name for c in p.schema.columns] == ["v", "id"]

    def test_map(self):
        db, heap = make_db(5)
        ctx = ctx_of(db)
        out_schema = Schema("m", [float64("double_v")])
        out = Map(ctx, SeqScan(ctx, heap), lambda r: (r[2] * 2,),
                  out_schema).execute()
        assert out == [(i * 1.0,) for i in range(5)]

    def test_limit(self):
        db, heap = make_db(100)
        ctx = ctx_of(db)
        assert len(Limit(ctx, SeqScan(ctx, heap), 7).execute()) == 7
        assert Limit(ctx, SeqScan(ctx, heap), 0).execute() == []

    def test_limit_negative_rejected(self):
        db, heap = make_db(5)
        ctx = ctx_of(db)
        with pytest.raises(ValueError):
            Limit(ctx, SeqScan(ctx, heap), -1)


class TestJoins:
    def test_hash_join_matches_naive(self):
        db, left_heap = make_db(60)
        s2 = Schema("u", [int64("grp"), int64("w")])
        right = db.catalog.create_table(s2)
        for g in range(5):
            right.append((g, g * 100))
        ctx = ctx_of(db)
        out = HashJoin(
            ctx, SeqScan(ctx, right), SeqScan(ctx, left_heap),
            build_key=lambda r: r[0], probe_key=lambda r: r[1],
        ).execute()
        naive = [
            rr + lr
            for lr in [left_heap.get(i) for i in range(60)]
            for rr in [right.get(j) for j in range(5)]
            if rr[0] == lr[1]
        ]
        assert sorted(out) == sorted(naive)

    def test_hash_join_no_matches(self):
        db, heap = make_db(10)
        s2 = Schema("u", [int64("k")])
        right = db.catalog.create_table(s2)
        right.append((999,))
        ctx = ctx_of(db)
        out = HashJoin(ctx, SeqScan(ctx, right), SeqScan(ctx, heap),
                       build_key=lambda r: r[0],
                       probe_key=lambda r: r[0]).execute()
        assert out == []

    def test_join_schema_renames_duplicates(self):
        db, heap = make_db(1)
        ctx = ctx_of(db)
        j = HashJoin(ctx, SeqScan(ctx, heap), SeqScan(ctx, heap),
                     build_key=lambda r: r[0], probe_key=lambda r: r[0])
        names = [c.name for c in j.schema.columns]
        assert len(names) == len(set(names))

    def test_nested_loop_join(self):
        db, heap = make_db(20)
        s2 = Schema("u", [int64("k")])
        right = db.catalog.create_table(s2)
        for g in range(3):
            right.append((g,))
        ctx = ctx_of(db)
        out = NestedLoopJoin(ctx, SeqScan(ctx, heap), SeqScan(ctx, right),
                             lambda o, i: o[1] == i[0]).execute()
        assert len(out) == sum(1 for i in range(20) if i % 7 < 3)


class TestSort:
    def test_sort_ascending(self):
        db, heap = make_db(50)
        ctx = ctx_of(db)
        out = Sort(ctx, SeqScan(ctx, heap), key=lambda r: -r[0]).execute()
        assert [r[0] for r in out] == list(range(49, -1, -1))

    def test_sort_stable_on_equal_keys(self):
        db, heap = make_db(50)
        ctx = ctx_of(db)
        out = Sort(ctx, SeqScan(ctx, heap), key=lambda r: r[1]).execute()
        for a, b in zip(out, out[1:]):
            if a[1] == b[1]:
                assert a[0] < b[0]  # Python sort stability preserved

    def test_topn_smallest(self):
        db, heap = make_db(100)
        ctx = ctx_of(db)
        out = TopN(ctx, SeqScan(ctx, heap), key=lambda r: r[0], n=5).execute()
        assert [r[0] for r in out] == [0, 1, 2, 3, 4]

    def test_topn_largest(self):
        db, heap = make_db(100)
        ctx = ctx_of(db)
        out = TopN(ctx, SeqScan(ctx, heap), key=lambda r: r[0], n=5,
                   reverse=True).execute()
        assert [r[0] for r in out] == [99, 98, 97, 96, 95]

    def test_topn_fewer_rows_than_n(self):
        db, heap = make_db(3)
        ctx = ctx_of(db)
        out = TopN(ctx, SeqScan(ctx, heap), key=lambda r: r[0], n=10).execute()
        assert len(out) == 3


class TestAggregates:
    def test_stream_aggregate(self):
        db, heap = make_db(100)
        ctx = ctx_of(db)
        out = StreamAggregate(ctx, SeqScan(ctx, heap), [
            AggSpec("count"),
            AggSpec("sum", lambda r: r[2], "sv"),
            AggSpec("min", lambda r: r[2], "mn"),
            AggSpec("max", lambda r: r[2], "mx"),
            AggSpec("avg", lambda r: r[2], "av"),
        ]).execute()
        assert out == [(100, sum(i * 0.5 for i in range(100)), 0.0, 49.5,
                        sum(i * 0.5 for i in range(100)) / 100)]

    def test_hash_aggregate_groups(self):
        db, heap = make_db(100)
        ctx = ctx_of(db)
        out = HashAggregate(ctx, SeqScan(ctx, heap), lambda r: r[1],
                            [AggSpec("count")]).execute()
        as_dict = dict(out)
        for g in range(7):
            assert as_dict[g] == sum(1 for i in range(100) if i % 7 == g)

    def test_hash_aggregate_first_seen_order(self):
        db, heap = make_db(100)
        ctx = ctx_of(db)
        out = HashAggregate(ctx, SeqScan(ctx, heap), lambda r: r[1],
                            [AggSpec("count")]).execute()
        assert [r[0] for r in out] == list(range(7))

    def test_tuple_group_keys_flattened(self):
        db, heap = make_db(20)
        ctx = ctx_of(db)
        out = HashAggregate(ctx, SeqScan(ctx, heap),
                            lambda r: (r[1], r[0] % 2),
                            [AggSpec("count")]).execute()
        assert all(len(r) == 3 for r in out)

    def test_empty_aggs_rejected(self):
        db, heap = make_db(5)
        ctx = ctx_of(db)
        with pytest.raises(ValueError):
            HashAggregate(ctx, SeqScan(ctx, heap), lambda r: r[0], [])
        with pytest.raises(ValueError):
            AggSpec("sum")  # missing value extractor
        with pytest.raises(ValueError):
            AggSpec("median", lambda r: r[0])

    def test_avg_of_empty_input(self):
        db, heap = make_db(0)
        ctx = ctx_of(db)
        out = StreamAggregate(ctx, SeqScan(ctx, heap),
                              [AggSpec("avg", lambda r: r[2], "a")]).execute()
        assert out == [(None,)]


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 5)),
                max_size=150))
def test_group_count_property(pairs):
    """Property: hash-aggregate counts match collections.Counter."""
    from collections import Counter

    db = Database()
    s = Schema("p", [int64("k"), int64("g")])
    heap = db.catalog.create_table(s)
    for row in pairs:
        heap.append(row)
    ctx = db.session("c", traced=False).ctx
    out = HashAggregate(ctx, SeqScan(ctx, heap), lambda r: r[1],
                        [AggSpec("count")]).execute()
    assert dict(out) == dict(Counter(g for _, g in pairs))
