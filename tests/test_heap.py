"""Unit tests for heap files (materialized and virtual)."""

import pytest

from repro.db.heap import EXTENT_PAGES, HeapFile
from repro.db.page import PageLayout
from repro.db.schema import Schema
from repro.db.types import char, float64, int64
from repro.simulator.addresses import PAGE_SIZE, AddressSpace


def schema():
    return Schema("t", [int64("id"), float64("v"), char("pad", 30)])


def make_heap(**kw):
    return HeapFile(AddressSpace(), schema(), "t", **kw)


class TestMaterialized:
    def test_append_get_roundtrip(self):
        h = make_heap()
        rids = [h.append((i, i * 1.5, "p")) for i in range(100)]
        assert rids == list(range(100))
        assert h.get(50) == (50, 75.0, "p")
        assert h.n_rows == 100

    def test_arity_checked(self):
        h = make_heap()
        with pytest.raises(ValueError):
            h.append((1, 2.0))

    def test_out_of_range_get(self):
        h = make_heap()
        h.append((1, 1.0, "a"))
        with pytest.raises(IndexError):
            h.get(1)
        with pytest.raises(IndexError):
            h.get(-1)

    def test_set_field(self):
        h = make_heap()
        h.append((1, 1.0, "a"))
        new = h.set_field(0, 1, 9.0)
        assert new == (1, 9.0, "a")
        assert h.get(0) == (1, 9.0, "a")

    def test_scan_range(self):
        h = make_heap()
        for i in range(10):
            h.append((i, 0.0, "x"))
        got = [rid for rid, _ in h.scan(3, 7)]
        assert got == [3, 4, 5, 6]

    def test_pages_grow_with_rows(self):
        h = make_heap()
        cap = h.format.capacity
        for i in range(cap + 1):
            h.append((i, 0.0, "x"))
        assert h.n_pages == 2

    def test_extent_allocation(self):
        h = make_heap()
        cap = h.format.capacity
        for i in range(cap * (EXTENT_PAGES + 1)):
            h.append((i, 0.0, "x"))
        # Pages beyond the first extent resolve to the second extent.
        assert h.page_base(EXTENT_PAGES) != h.page_base(0)
        assert h.page_base(EXTENT_PAGES) % PAGE_SIZE == 0


class TestVirtual:
    def row_source(self, rid):
        return (rid, rid * 2.0, "v")

    def make(self, n=1000):
        return HeapFile(AddressSpace(), schema(), "t",
                        n_virtual_rows=n, row_source=self.row_source)

    def test_requires_row_source(self):
        with pytest.raises(ValueError):
            HeapFile(AddressSpace(), schema(), "t", n_virtual_rows=10)

    def test_get_generates(self):
        h = self.make()
        assert h.get(123) == (123, 246.0, "v")
        assert h.n_rows == 1000

    def test_append_rejected(self):
        h = self.make()
        with pytest.raises(TypeError):
            h.append((1, 1.0, "x"))

    def test_overlay_update(self):
        h = self.make()
        h.set_field(5, 1, -1.0)
        assert h.get(5) == (5, -1.0, "v")
        assert h.get(6) == (6, 12.0, "v")  # neighbours unaffected

    def test_pages_preallocated(self):
        h = self.make(n=10_000)
        # Every page addressable without growth.
        assert h.page_base(h.n_pages - 1) > 0

    def test_footprint_scales_with_rows(self):
        small = self.make(n=100)
        large = self.make(n=10_000)
        assert large.footprint_bytes > 50 * small.footprint_bytes


class TestAddressing:
    def test_locate_inverse_of_append_order(self):
        h = make_heap()
        cap = h.format.capacity
        for i in range(cap * 2):
            h.append((i, 0.0, "x"))
        assert h.locate(0) == (0, 0)
        assert h.locate(cap) == (1, 0)
        assert h.locate(cap + 3) == (1, 3)

    def test_record_addrs_unique(self):
        h = make_heap()
        for i in range(200):
            h.append((i, 0.0, "x"))
        addrs = {h.record_addr(i) for i in range(200)}
        assert len(addrs) == 200

    def test_field_addr_within_page(self):
        h = make_heap()
        h.append((0, 0.0, "x"))
        base = h.page_base(0)
        assert base <= h.field_addr(0, 2) < base + PAGE_SIZE

    def test_pax_layout_supported(self):
        h = HeapFile(AddressSpace(), schema(), "t", layout=PageLayout.PAX)
        h.append((1, 1.0, "a"))
        assert h.get(0) == (1, 1.0, "a")
        assert h.format.layout is PageLayout.PAX

    def test_unallocated_page_raises(self):
        h = make_heap()
        with pytest.raises(IndexError):
            h.page_base(EXTENT_PAGES * 10)
