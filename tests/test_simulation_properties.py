"""Property tests on the timing simulation's global invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.cores import FatCore, LeanCore, fat_core_params, lean_core_params
from repro.simulator.hierarchy import HierarchyParams, SharedL2Hierarchy
from repro.simulator.machine import Machine
from repro.simulator.configs import fc_cmp, lc_cmp
from repro.simulator.trace import TraceBuilder, Workload

event_strategy = st.tuples(
    st.integers(1, 300),                       # icount
    st.integers(0, 1 << 18),                   # line offset
    st.integers(0, 0x13),                      # flags (subset incl stream)
)


def build_trace(events, name="t"):
    tb = TraceBuilder(name, ilp=2.0, branch_mpki=3.0, ilp_inorder=1.2)
    rid = tb.register_code("mod", 0x10_0000, 64)
    for icount, line, flags in events:
        tb.event(icount, 0x4000_0000 + line * 64, flags, rid)
    return tb.build()


def make_hier():
    return SharedL2Hierarchy(HierarchyParams(
        n_cores=1, l2_mb=0.5, l2_nominal_mb=8.0))


@settings(max_examples=25, deadline=None)
@given(st.lists(event_strategy, min_size=1, max_size=120))
def test_fat_core_time_equals_breakdown(events):
    """Property: the fat core's clock equals its accounted busy time."""
    trace = build_trace(events)
    core = FatCore(0, fat_core_params(), make_hier(), [trace])
    for _ in range(len(events)):
        core.step()
    assert core.breakdown.busy == pytest.approx(core.t, rel=1e-9)
    assert core.retired == trace.total_instructions


@settings(max_examples=20, deadline=None)
@given(st.lists(st.lists(event_strategy, min_size=1, max_size=40),
                min_size=1, max_size=4))
def test_lean_core_conserves_time(per_context_events):
    """Property: a lean core's breakdown partitions its elapsed time, for
    any context count and any reference mix."""
    traces = [[build_trace(evts, name=f"c{i}")]
              for i, evts in enumerate(per_context_events)]
    core = LeanCore(0, lean_core_params(), make_hier(), traces)
    for _ in range(500):
        core.step()
    assert core.breakdown.total == pytest.approx(core.t, rel=1e-6, abs=1e-6)


@settings(max_examples=10, deadline=None)
@given(st.lists(event_strategy, min_size=20, max_size=80),
       st.integers(1, 4))
def test_machine_retires_all_instructions_in_response_mode(events, n_cores):
    """Property: response mode retires exactly one pass of the trace
    (modulo the warm prefix) on any machine size."""
    trace = build_trace(events)
    wl = Workload("w", [trace])
    machine = Machine(fc_cmp(n_cores=n_cores, l2_nominal_mb=1, scale=1.0))
    result = machine.run(wl, mode="response", warm_passes=0)
    assert result.retired == trace.total_instructions
    assert result.response_cycles > 0


@settings(max_examples=8, deadline=None)
@given(st.lists(event_strategy, min_size=30, max_size=60))
def test_camps_agree_on_work_disagree_on_time(events):
    """Property: both camps retire the same instructions for a trace pass;
    the lean camp is never faster single-threaded."""
    trace = build_trace(events)
    results = {}
    for builder in (fc_cmp, lc_cmp):
        machine = Machine(builder(n_cores=2, l2_nominal_mb=1, scale=1.0))
        results[builder.__name__] = machine.run(
            Workload("w", [trace]), mode="response", warm_passes=0)
    assert results["fc_cmp"].retired == results["lc_cmp"].retired
    assert (results["lc_cmp"].response_cycles
            >= results["fc_cmp"].response_cycles * 0.95)
