"""Differential proof: both CC modes commit the same state.

The two executors could hardly be more different — wound-wait 2PL
aborts and retries under a round-robin interleaver; the partitioned
mode runs whole transactions in timestamp order against partition
clocks — yet over the same seeded stream they must land on *identical*
committed rows, because every effect is a commutative delta or an
insert under an input-derived key (see the contention module
docstring).  Any divergence means one executor lost or duplicated a
transaction's effects.

The golden fixture pins the contention trends the study reports: the
exact abort/lock-wait integers at the pinned coordinates (scale 0.05,
seed 42, default clients) and their monotone rise with theta.  These
are deterministic — a change here is a behavior change to the
executors, not noise, and should be reviewed as such.
"""

import pytest

from repro.workloads.contention import SkewSpec, simulate_contention

SCALE = 0.05
THETAS = (0.0, 0.6, 1.2)
SEEDS = (42, 7)

#: Pinned executor accounting at scale 0.05, seed 42, 16 clients x 24
#: txns: theta -> (2PL aborts, 2PL lock_wait_units, 2PL wasted_units,
#: partitioned lock_wait_units).  Regenerate by running
#: ``simulate_contention`` at these coordinates after an intentional
#: executor change.
GOLDEN = {
    0.0: (253, 1657, 589, 1071),
    0.6: (282, 1885, 739, 1184),
    0.9: (429, 3477, 2154, 1602),
    1.2: (626, 5200, 2917, 1658),
}


@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("seed", SEEDS)
def test_cc_modes_commit_identical_state(theta, seed):
    skew = SkewSpec(theta=theta)
    locked = simulate_contention(scale=SCALE, skew=skew, cc_mode="2pl",
                                 seed=seed)
    ordered = simulate_contention(scale=SCALE, skew=skew,
                                  cc_mode="partitioned", seed=seed)
    assert locked.state == ordered.state
    assert locked.state  # the workload really wrote rows
    assert locked.commits == ordered.commits
    assert ordered.aborts == 0


def test_cc_modes_agree_under_hotspot():
    skew = SkewSpec(theta=0.9, hot_warehouses=2, cross_rate=0.3)
    locked = simulate_contention(scale=SCALE, skew=skew, cc_mode="2pl")
    ordered = simulate_contention(scale=SCALE, skew=skew,
                                  cc_mode="partitioned")
    assert locked.state == ordered.state


def test_state_diverges_across_seeds():
    """Equality above is not vacuous: different streams differ."""
    a = simulate_contention(scale=SCALE, seed=42)
    b = simulate_contention(scale=SCALE, seed=7)
    assert a.state != b.state


def test_golden_contention_fixture():
    for theta, (aborts, lock_wait, wasted, part_lw) in GOLDEN.items():
        locked = simulate_contention(scale=SCALE, skew=SkewSpec(theta=theta),
                                     cc_mode="2pl")
        ordered = simulate_contention(scale=SCALE, skew=SkewSpec(theta=theta),
                                      cc_mode="partitioned")
        assert locked.aborts == aborts, theta
        assert locked.lock_wait_units == lock_wait, theta
        assert locked.wasted_units == wasted, theta
        assert ordered.lock_wait_units == part_lw, theta
        assert locked.commits == ordered.commits == 384
        assert locked.busy_units == ordered.busy_units == 4757


def test_golden_trends_rise_with_theta():
    """The study's headline shape: skew raises 2PL's conflict footprint
    monotonically; the partitioned camp never aborts."""
    thetas = sorted(GOLDEN)
    aborts = [GOLDEN[t][0] for t in thetas]
    lock_waits = [GOLDEN[t][1] for t in thetas]
    assert aborts == sorted(aborts) and aborts[0] < aborts[-1]
    assert lock_waits == sorted(lock_waits) and lock_waits[0] < lock_waits[-1]
    for theta in thetas:
        ordered = simulate_contention(scale=SCALE, skew=SkewSpec(theta=theta),
                                      cc_mode="partitioned")
        assert ordered.abort_rate == 0.0


def test_simulation_is_deterministic():
    """Same coordinates, fresh run -> bit-identical accounting and state."""
    a = simulate_contention(scale=SCALE, skew=SkewSpec(theta=0.9),
                            cc_mode="2pl")
    b = simulate_contention(scale=SCALE, skew=SkewSpec(theta=0.9),
                            cc_mode="2pl")
    assert a.state == b.state
    assert (a.commits, a.aborts, a.lock_wait_units, a.wasted_units) == \
           (b.commits, b.aborts, b.lock_wait_units, b.wasted_units)
    assert [(t.ts, t.commit_seq) for t in a.schedule] == \
           [(t.ts, t.commit_seq) for t in b.schedule]
