"""Differential oracle for the columnar trace representation.

The columnar :class:`~repro.simulator.trace.Trace` (two packed 64-bit
columns, DESIGN.md §11) replaced an object-per-event representation.  This
suite keeps an independent *reference* implementation — one plain Python
tuple per access, no packing, no columns — and drives both through the
same randomized workloads, one cell per (kind, regime) with at least 50k
accesses, asserting:

- access-for-access equality of every event a trace yields, in order;
- identical replay order under the multiplexed per-thread interleaving a
  saturated machine performs (cyclic round-robin across client cursors);
- field-for-field identical ``MachineResult``s when the same events enter
  the simulator through two independent construction paths (the packed
  builder vs ``Trace.from_columns`` over the reference's field lists).

The reference is deliberately naive: if the packed representation ever
drops, reorders, or mis-decodes a field, these tests name the first
diverging access instead of failing on an aggregate.
"""

import dataclasses
import random

import pytest

from repro.core.parallel import WARM_FRACTIONS
from repro.simulator.configs import fc_cmp
from repro.simulator.machine import Machine
from repro.simulator.trace import (
    MAX_EVENT_ICOUNT,
    CodeFootprint,
    Trace,
    TraceBuilder,
    Workload,
)

#: Shared with the determinism suites so machine geometry builds once.
SCALE = 0.02

#: Per-cell generation profiles: flag mixes shaped like the real
#: workloads (OLTP writes and kernel time, DSS scan streams), client
#: counts shaped like the regimes.  ``clients * events_per_client`` is
#: >= 50_000 accesses in every cell.
CELLS = {
    ("oltp", "saturated"): dict(
        clients=8, events_per_client=6_500, regions=6,
        p_write=0.30, p_kernel=0.20, p_dep=0.15, p_stream=0.02,
        p_jump=0.05),
    ("oltp", "unsaturated"): dict(
        clients=1, events_per_client=52_000, regions=6,
        p_write=0.30, p_kernel=0.20, p_dep=0.15, p_stream=0.02,
        p_jump=0.05),
    ("dss", "saturated"): dict(
        clients=8, events_per_client=6_500, regions=4,
        p_write=0.02, p_kernel=0.05, p_dep=0.35, p_stream=0.60,
        p_jump=0.03),
    ("dss", "unsaturated"): dict(
        clients=1, events_per_client=52_000, regions=4,
        p_write=0.02, p_kernel=0.05, p_dep=0.35, p_stream=0.60,
        p_jump=0.03),
}

CELL_IDS = [f"{k}-{r}" for k, r in CELLS]

FLAG_WRITE, FLAG_DEP, FLAG_KERNEL, FLAG_JUMP, FLAG_STREAM = (
    0x1, 0x2, 0x4, 0x8, 0x10)


class ReferenceTrace:
    """The pre-columnar representation: one ``(icount, addr, flags,
    region)`` tuple per access, stored outright.

    Implements the same accessor API as the columnar Trace by reading the
    tuples directly — no packing, no bit twiddling — so any divergence
    between the two is a columnar-representation bug, not a shared one.
    """

    def __init__(self, name, events, footprints):
        self.name = name
        self.events = [
            (min(ic, MAX_EVENT_ICOUNT), addr, flags, region)
            for ic, addr, flags, region in events
        ]
        self.footprints = footprints

    def __len__(self):
        return len(self.events)

    def access_at(self, i):
        return self.events[i]

    def accesses(self):
        return iter(self.events)

    @property
    def total_instructions(self):
        return sum(e[0] for e in self.events)

    def dependent_fraction(self):
        if not self.events:
            return 0.0
        return sum(1 for e in self.events if e[2] & FLAG_DEP) / len(self.events)

    def write_fraction(self):
        if not self.events:
            return 0.0
        return sum(1 for e in self.events if e[2] & FLAG_WRITE) / len(self.events)

    def distinct_lines(self):
        return len({e[1] >> 6 for e in self.events})

    def sliced(self, lo, hi):
        return ReferenceTrace(self.name, self.events[lo:hi], self.footprints)


def _gen_client(rng, profile, client):
    """One client's randomized event list (raw, pre-clamp icounts)."""
    events = []
    for i in range(profile["events_per_client"]):
        draw = rng.random()
        if draw < 0.001:
            icount = MAX_EVENT_ICOUNT + rng.randrange(1, 2**34)  # clamps
        elif draw < 0.05:
            icount = 0
        else:
            icount = rng.randrange(1, 400)
        addr = rng.randrange(0, 2**40)
        flags = 0
        if rng.random() < profile["p_write"]:
            flags |= FLAG_WRITE
        if rng.random() < profile["p_dep"]:
            flags |= FLAG_DEP
        if rng.random() < profile["p_kernel"]:
            flags |= FLAG_KERNEL
        if rng.random() < profile["p_jump"]:
            flags |= FLAG_JUMP
        if rng.random() < profile["p_stream"]:
            flags |= FLAG_STREAM
        region = rng.randrange(profile["regions"])
        events.append((icount, addr, flags, region))
    return events


def _build_cell(kind, regime):
    """Both representations of one randomized cell, clients aligned."""
    profile = CELLS[(kind, regime)]
    rng = random.Random(f"{kind}|{regime}")  # stable across hash seeds
    columnar, reference = [], []
    for c in range(profile["clients"]):
        tb = TraceBuilder(f"{kind}-{regime}-c{c}", ilp=2.0,
                          branch_mpki=6.0, ilp_inorder=1.2)
        rids = [tb.register_code(f"mod{m}", 0x10_0000 + 0x4000 * m, 16)
                for m in range(profile["regions"])]
        footprints = [CodeFootprint(f"mod{m}", 0x10_0000 + 0x4000 * m, 16)
                      for m in range(profile["regions"])]
        events = _gen_client(rng, profile, c)
        for icount, addr, flags, region in events:
            tb.event(icount, addr, flags, rids[region])
        columnar.append(tb.build())
        reference.append(ReferenceTrace(f"{kind}-{regime}-c{c}", events,
                                        footprints))
    return columnar, reference


_CELL_CACHE = {}


def _cell(kind, regime):
    got = _CELL_CACHE.get((kind, regime))
    if got is None:
        got = _CELL_CACHE[(kind, regime)] = _build_cell(kind, regime)
    return got


@pytest.mark.parametrize("kind,regime", list(CELLS), ids=CELL_IDS)
def test_access_for_access_equality(kind, regime):
    """Every access of every client trace decodes to exactly the tuple
    the reference holds — same order, same fields, clamp included."""
    columnar, reference = _cell(kind, regime)
    total = 0
    for tr, ref in zip(columnar, reference):
        assert len(tr) == len(ref)
        total += len(tr)
        assert list(tr.accesses()) == ref.events
        rng = random.Random(len(ref))
        for i in rng.sample(range(len(ref)), 200):
            assert tr.access_at(i) == ref.access_at(i)
            ic, addr, flags, region = ref.access_at(i)
            assert tr.icount_at(i) == ic
            assert tr.addr_at(i) == addr
            assert tr.flags_at(i) == flags
            assert tr.region_at(i) == region
    assert total >= 50_000


@pytest.mark.parametrize("kind,regime", list(CELLS), ids=CELL_IDS)
def test_aggregate_statistics_match_reference(kind, regime):
    columnar, reference = _cell(kind, regime)
    for tr, ref in zip(columnar, reference):
        assert tr.total_instructions == ref.total_instructions
        assert tr.dependent_fraction() == ref.dependent_fraction()
        assert tr.write_fraction() == ref.write_fraction()
        assert tr.distinct_lines() == ref.distinct_lines()


def _interleave(traces, quantum, total):
    """Reference replay order: cyclic round-robin, ``quantum`` accesses
    per client per turn — the multiplexed-context schedule a saturated
    machine applies when software threads outnumber hardware contexts.

    Works on any representation exposing ``access_at``/``__len__``, so
    the columnar and reference sides produce comparable ``(client,
    event)`` sequences.
    """
    order = []
    cursors = [0] * len(traces)
    while len(order) < total:
        for c, tr in enumerate(traces):
            n = len(tr)
            if n == 0:
                continue
            for _ in range(quantum):
                order.append((c, tr.access_at(cursors[c] % n)))
                cursors[c] += 1
                if len(order) == total:
                    return order
    return order


@pytest.mark.parametrize("kind,regime", list(CELLS), ids=CELL_IDS)
def test_replay_interleaving_matches_reference(kind, regime):
    """The interleaved per-thread replay order over the columnar traces
    is identical, access for access, to the reference's — including the
    cyclic wrap when a cursor passes the end of its trace."""
    columnar, reference = _cell(kind, regime)
    total = min(60_000, sum(len(t) for t in columnar) + 1_000)  # forces wrap
    for quantum in (1, 7, 64):
        a = _interleave(columnar, quantum, total)
        b = _interleave(reference, quantum, total)
        assert a == b


@pytest.mark.slow
@pytest.mark.parametrize("kind,regime", list(CELLS), ids=CELL_IDS)
def test_machine_result_identical_across_construction_paths(kind, regime):
    """Two independent construction paths — the engine-side packed
    builder vs ``Trace.from_columns`` over the reference's field lists —
    must give field-for-field identical MachineResults."""
    columnar, reference = _cell(kind, regime)
    rebuilt = [
        Trace.from_columns(
            name=tr.name,
            icounts=[e[0] for e in ref.events],
            addrs=[e[1] for e in ref.events],
            flags=[e[2] for e in ref.events],
            regions=[e[3] for e in ref.events],
            footprints=ref.footprints,
            ilp=tr.ilp,
            branch_mpki=tr.branch_mpki,
            ilp_inorder=tr.ilp_inorder,
        )
        for tr, ref in zip(columnar, reference)
    ]
    config = fc_cmp(n_cores=2, l2_nominal_mb=1.0, scale=SCALE)
    mode = "response" if regime == "unsaturated" else "throughput"
    results = []
    for traces in (columnar, rebuilt):
        wl = Workload(name=f"oracle-{kind}-{regime}", traces=traces,
                      kind=kind, saturated=(regime == "saturated"))
        results.append(Machine(config).run(
            wl, mode=mode, measure_cycles=15_000,
            warm_fraction=WARM_FRACTIONS[kind]))
    assert dataclasses.asdict(results[0]) == dataclasses.asdict(results[1])
