"""Unit and property tests for the B+-tree index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.btree import BTreeIndex
from repro.db.tracer import NullTracer
from repro.simulator.addresses import AddressSpace


def make_tree(order=8):
    return BTreeIndex(AddressSpace(), "idx", order=order)


class TestBasics:
    def test_empty_search(self):
        t = make_tree()
        assert t.search(1) is None

    def test_insert_search(self):
        t = make_tree()
        t.insert(5, "five")
        assert t.search(5) == "five"
        assert t.search(4) is None

    def test_duplicate_key_overwrites(self):
        t = make_tree()
        t.insert(1, "a")
        t.insert(1, "b")
        assert t.search(1) == "b"
        assert t.n_entries == 1

    def test_order_validation(self):
        with pytest.raises(ValueError):
            make_tree(order=2)

    def test_split_grows_height(self):
        t = make_tree(order=4)
        for i in range(100):
            t.insert(i, i)
        assert t.height >= 3
        t.check_invariants()

    def test_search_after_many_splits(self):
        t = make_tree(order=4)
        keys = list(range(500))
        random.Random(3).shuffle(keys)
        for k in keys:
            t.insert(k, k * 10)
        for k in range(500):
            assert t.search(k) == k * 10

    def test_range_scan_sorted(self):
        t = make_tree(order=6)
        for k in random.Random(1).sample(range(1000), 300):
            t.insert(k, -k)
        got = list(t.range(100, 400))
        keys = [k for k, _ in got]
        assert keys == sorted(keys)
        assert all(100 <= k < 400 for k in keys)

    def test_range_empty_interval(self):
        t = make_tree()
        for k in range(10):
            t.insert(k, k)
        assert list(t.range(20, 30)) == []
        assert list(t.range(5, 5)) == []

    def test_range_spans_leaves(self):
        t = make_tree(order=4)
        for k in range(200):
            t.insert(k, k)
        got = [k for k, _ in t.range(0, 200)]
        assert got == list(range(200))

    def test_items_complete(self):
        t = make_tree(order=4)
        for k in range(100, 0, -1):
            t.insert(k, k)
        assert [k for k, _ in t.items()] == list(range(1, 101))

    def test_composite_keys(self):
        t = make_tree(order=4)
        for w in range(5):
            for d in range(10):
                t.insert((w, d), w * 100 + d)
        got = list(t.range((2, 0), (3, 0)))
        assert [k for k, _ in got] == [(2, d) for d in range(10)]


class TestTracing:
    def test_search_emits_depth_many_dependent_refs(self):
        from repro.db.tracer import CodeRegistry, MemoryTracer
        from repro.simulator.trace import FLAG_DEPENDENT

        space = AddressSpace()
        t = BTreeIndex(space, "idx", order=4)
        for k in range(200):
            t.insert(k, k)
        tracer = MemoryTracer(CodeRegistry(space), "c")
        t.search(100, tracer)
        trace = tracer.finish()
        dep = sum(1 for f in trace.flags if f & FLAG_DEPENDENT)
        assert dep >= t.height  # one per level at least

    def test_nodes_have_distinct_addresses(self):
        t = make_tree(order=4)
        for k in range(500):
            t.insert(k, k)

        bases = []

        def collect(node):
            bases.append(node.base)
            for c in node.children:
                collect(c)

        collect(t.root)
        assert len(bases) == len(set(bases)) == t.n_nodes


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(-10_000, 10_000), st.integers()),
                max_size=400))
def test_btree_matches_dict(pairs):
    """Property: the tree behaves like a dict with sorted iteration."""
    t = make_tree(order=4)
    reference = {}
    for k, v in pairs:
        t.insert(k, v)
        reference[k] = v
    t.check_invariants()
    assert list(t.items()) == sorted(reference.items())
    for k, v in reference.items():
        assert t.search(k) == v


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, 2000), min_size=1, max_size=300),
    st.integers(0, 2000),
    st.integers(0, 2000),
)
def test_btree_range_matches_sorted_filter(keys, a, b):
    """Property: range(lo, hi) == sorted keys within [lo, hi)."""
    lo, hi = min(a, b), max(a, b)
    t = make_tree(order=4)
    for k in keys:
        t.insert(k, k)
    expected = sorted(k for k in set(keys) if lo <= k < hi)
    assert [k for k, _ in t.range(lo, hi)] == expected
