"""Release hygiene: public API documentation and import health.

Cheap meta-tests that keep the library adoptable: every module and every
public class/function carries a docstring, the package imports cleanly
from a cold interpreter, and the declared exports exist.
"""

import importlib
import inspect
import pkgutil

import repro

PACKAGES = [
    "repro",
    "repro.simulator",
    "repro.db",
    "repro.db.exec",
    "repro.workloads",
    "repro.core",
    "repro.staged",
    "repro.model",
    "repro.explore",
    "repro.serve",
]


def walk_modules():
    seen = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        seen.append(pkg)
        for info in pkgutil.iter_modules(pkg.__path__,
                                         prefix=pkg_name + "."):
            if not info.ispkg:
                seen.append(importlib.import_module(info.name))
    return seen


class TestHygiene:
    def test_every_module_has_a_docstring(self):
        missing = [m.__name__ for m in walk_modules() if not m.__doc__]
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_callables_documented(self):
        undocumented = []
        for module in walk_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its home
                if not inspect.getdoc(obj):
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, \
            f"undocumented public items: {undocumented}"

    def test_declared_exports_resolve(self):
        for pkg_name in PACKAGES:
            pkg = importlib.import_module(pkg_name)
            for name in getattr(pkg, "__all__", []):
                assert hasattr(pkg, name), f"{pkg_name}.__all__: {name}"

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_public_methods_documented_on_key_classes(self):
        from repro.core.experiment import Experiment
        from repro.db.engine import Database
        from repro.simulator.cache import SetAssocCache
        from repro.simulator.machine import Machine

        for cls in (Machine, Database, Experiment, SetAssocCache):
            for name, member in inspect.getmembers(
                    cls, predicate=inspect.isfunction):
                if name.startswith("_"):
                    continue
                assert inspect.getdoc(member), f"{cls.__name__}.{name}"
