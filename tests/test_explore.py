"""Design-space explorer tests: enumeration, Pareto pruning, and the
end-to-end prune-then-confirm loop at a tiny study scale."""

import pytest

from repro.core.experiment import Experiment
from repro.explore.explorer import ScreenRow, _pareto, explore, format_explore
from repro.explore.space import (
    Candidate,
    DEFAULT_L2_BANKS,
    candidate_area,
    default_budget_mm2,
    enumerate_candidates,
    quick_budget_mm2,
)

SCALE = 0.01
CYCLES = 5_000


class TestEnumeration:
    def test_quick_budget_holds_over_100_candidates(self):
        cands = enumerate_candidates(quick_budget_mm2())
        assert len(cands) >= 100

    def test_every_candidate_fits_the_budget(self):
        budget = quick_budget_mm2()
        for cand in enumerate_candidates(budget):
            assert cand.total_mm2 <= budget

    def test_both_camps_present_under_default_budget(self):
        camps = {c.camp for c in enumerate_candidates(default_budget_mm2())}
        assert camps == {"fc", "lc"}

    def test_enumeration_is_deterministic(self):
        budget = default_budget_mm2()
        assert enumerate_candidates(budget) == enumerate_candidates(budget)

    def test_larger_budget_is_a_superset(self):
        small = set(enumerate_candidates(quick_budget_mm2()))
        large = set(enumerate_candidates(default_budget_mm2()))
        assert small < large

    def test_area_matches_cost_models(self):
        for cand in enumerate_candidates(quick_budget_mm2())[:20]:
            core, l2 = candidate_area(cand.camp, cand.n_cores,
                                      cand.l2_nominal_mb)
            assert cand.core_mm2 == core and cand.l2_mm2 == l2

    def test_fat_core_costs_three_lean_cores(self):
        fat, _ = candidate_area("fc", 1, 1.0)
        lean, _ = candidate_area("lc", 3, 1.0)
        assert fat == pytest.approx(lean)

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError, match="budget"):
            enumerate_candidates(0.0)
        with pytest.raises(ValueError, match="budget"):
            enumerate_candidates(-5.0)

    def test_rejects_unknown_camp(self):
        with pytest.raises(ValueError, match="camp"):
            enumerate_candidates(200.0, core_counts={"xc": (1, 2)})

    def test_candidate_config_carries_the_banks(self):
        cand = enumerate_candidates(quick_budget_mm2())[0]
        config = cand.config(SCALE)
        assert config.hierarchy.l2_banks == cand.l2_banks
        assert config.hierarchy.n_cores == cand.n_cores


class TestPareto:
    @staticmethod
    def _row(camp, cores, size, ipc):
        core_mm2, l2_mm2 = candidate_area(camp, cores, size)
        cand = Candidate(camp=camp, n_cores=cores, l2_nominal_mb=size,
                         l2_banks=DEFAULT_L2_BANKS[0],
                         core_mm2=core_mm2, l2_mm2=l2_mm2)
        return ScreenRow(candidate=cand, kind="oltp",
                         predicted_ipc=ipc, utilization=0.5)

    def test_frontier_is_monotone_in_area_and_ipc(self):
        rows = [self._row("lc", c, s, ipc) for c, s, ipc in
                [(1, 1.0, 0.5), (2, 1.0, 0.9), (2, 4.0, 0.8),
                 (4, 1.0, 1.6), (4, 4.0, 2.0), (8, 1.0, 1.9)]]
        frontier = _pareto(rows)
        areas = [r.candidate.total_mm2 for r in frontier]
        ipcs = [r.predicted_ipc for r in frontier]
        assert areas == sorted(areas)
        assert ipcs == sorted(ipcs)
        assert len(set(ipcs)) == len(ipcs)  # strictly improving

    def test_dominated_points_are_dropped(self):
        # (2, 4.0) costs more than (2, 1.0) but predicts less: dominated.
        rows = [self._row("lc", 2, 1.0, 0.9), self._row("lc", 2, 4.0, 0.8)]
        frontier = _pareto(rows)
        assert len(frontier) == 1
        assert frontier[0].candidate.l2_nominal_mb == 1.0


@pytest.mark.slow
class TestExploreEndToEnd:
    @pytest.fixture(scope="class")
    def report(self):
        exp = Experiment(scale=SCALE, measure_cycles=CYCLES, use_cache=False)
        return explore(exp, quick=True, validate=False, confirm_top=1)

    def test_screens_the_whole_space_fast(self, report):
        assert report.n_candidates >= 100
        assert report.n_screened == 2 * report.n_candidates
        assert report.screen_seconds < 5.0

    def test_frontier_confirmed_by_simulator(self, report):
        assert report.confirmed
        for kind in ("oltp", "dss"):
            frontier = report.frontier[kind]
            assert frontier
            areas = [r.candidate.total_mm2 for r in frontier]
            assert areas == sorted(areas)
        # Both camps' best chips are always in the confirmation set.
        assert {r.camp for r in report.confirmed} == {"fc", "lc"}

    def test_unsaturated_best_chips_rerun(self, report):
        # One response-mode run per (kind, camp).
        assert len(report.unsaturated) == 4
        assert all(r.metric == "response_cycles" for r in report.unsaturated)

    def test_all_four_checks_present(self, report):
        assert len(report.checks) == 4
        assert all(isinstance(v, bool) for v in report.checks.values())

    def test_format_is_complete(self, report):
        text = format_explore(report)
        assert "predicted Pareto frontier" in text
        assert "simulator-confirmed frontier" in text
        assert "screening MAE" in text
        assert "response mode" in text

    def test_budget_excluding_a_camp_is_an_error(self):
        exp = Experiment(scale=SCALE, measure_cycles=CYCLES, use_cache=False)
        # A budget below one fat core + the smallest L2 leaves fc empty.
        fat_core, l2 = candidate_area("fc", 1, 1.0)
        with pytest.raises(ValueError, match="fc"):
            explore(exp, budget_mm2=(fat_core + l2) * 0.9, validate=False)
