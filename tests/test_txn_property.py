"""Property tests: the lock managers against naive reference models.

The wound-wait executor and the trace engine both lean on
:class:`repro.db.txn.LockManager` honoring exactly the textbook
shared/exclusive compatibility matrix — a lock silently granted where
the matrix says conflict would let a non-serializable schedule through
the oracle unnoticed.  Hypothesis drives random acquire/release command
streams into the real manager and an oblivious dict-based model and
demands they agree on every outcome, every holder set, and every held
count; a final drain must leave no leaked table entries.

The subprocess test pins a subtler property: release order (and with it
the replayed trace) must not depend on ``PYTHONHASHSEED`` — the manager
tracks held resources in insertion order precisely so that traces are
reproducible across processes.
"""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.txn import (
    LockConflict,
    LockManager,
    LockMode,
    PartitionLockManager,
)
from repro.simulator.addresses import AddressSpace


class ReferenceLocks:
    """Oblivious lock table: the compatibility matrix, nothing else."""

    def __init__(self):
        self.table = {}  # resource -> [mode, set(holders)]

    def acquire(self, txn, resource, mode):
        """Returns True if granted, False if the matrix says conflict."""
        entry = self.table.get(resource)
        if entry is None:
            self.table[resource] = [mode, {txn}]
            return True
        held_mode, holders = entry
        if txn in holders:
            if mode is LockMode.EXCLUSIVE and held_mode is LockMode.SHARED:
                if len(holders) == 1:
                    entry[0] = LockMode.EXCLUSIVE
                    return True
                return False
            return True
        if held_mode is LockMode.SHARED and mode is LockMode.SHARED:
            holders.add(txn)
            return True
        return False

    def release_all(self, txn):
        for resource in list(self.table):
            mode, holders = self.table[resource]
            holders.discard(txn)
            if not holders:
                del self.table[resource]

    def holders(self, resource):
        entry = self.table.get(resource)
        return set(entry[1]) if entry else set()


commands = st.lists(
    st.one_of(
        st.tuples(st.just("acquire"), st.integers(0, 3),
                  st.integers(0, 5), st.booleans()),
        st.tuples(st.just("release"), st.integers(0, 3)),
    ),
    max_size=120,
)


@settings(max_examples=80, deadline=None)
@given(commands)
def test_lock_manager_matches_reference(cmds):
    lm = LockManager(AddressSpace())
    ref = ReferenceLocks()
    resources = set()
    for cmd in cmds:
        if cmd[0] == "acquire":
            _, txn, res, exclusive = cmd
            resource = ("row", res)
            resources.add(resource)
            mode = LockMode.EXCLUSIVE if exclusive else LockMode.SHARED
            expected = ref.acquire(txn, resource, mode)
            try:
                lm.acquire(txn, resource, mode)
                granted = True
            except LockConflict:
                granted = False
            assert granted == expected, (cmd, lm._table)
        else:
            _, txn = cmd
            ref.release_all(txn)
            lm.release_all(txn)
        for resource in resources:
            assert lm.holders(resource) == ref.holders(resource)
    # Drain: releasing every transaction must leave nothing behind.
    for txn in range(4):
        lm.release_all(txn)
        assert lm.locks_held(txn) == 0
    assert lm._table == {}
    assert lm._held == {}


@settings(max_examples=80, deadline=None)
@given(commands)
def test_release_all_restores_invariants(cmds):
    """After any prefix, release_all(txn) leaves txn with nothing and
    every other holder untouched."""
    lm = LockManager(AddressSpace())
    for cmd in cmds:
        if cmd[0] == "acquire":
            _, txn, res, exclusive = cmd
            try:
                lm.acquire(txn, ("row", res),
                           LockMode.EXCLUSIVE if exclusive
                           else LockMode.SHARED)
            except LockConflict:
                pass
        else:
            lm.release_all(cmd[1])
    before = {t: {r for r, e in lm._table.items() if t in e.holders}
              for t in range(4)}
    lm.release_all(0)
    assert lm.locks_held(0) == 0
    for resource in before[0]:
        assert 0 not in lm.holders(resource)
    for txn in range(1, 4):
        assert {r for r, e in lm._table.items()
                if txn in e.holders} == before[txn]


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3),
                          st.sets(st.integers(0, 7), min_size=1)),
                max_size=40))
def test_partition_locks_single_owner(claims):
    """PartitionLockManager: one owner per partition, full release."""
    plm = PartitionLockManager(AddressSpace(), 8)
    owner = {}
    for txn, partitions in claims:
        blocked = any(owner.get(p, txn) != txn for p in partitions)
        try:
            plm.acquire_all(txn, partitions)
            assert not blocked
            for p in partitions:
                owner[p] = txn
        except LockConflict:
            assert blocked
        for p in range(8):
            assert plm.owner(p) == owner.get(p)
    for txn in range(4):
        plm.release_all(txn)
        owner = {p: t for p, t in owner.items() if t != txn}
    assert all(plm.owner(p) is None for p in range(8))


_HASHSEED_SCRIPT = r"""
import sys
from repro.db.txn import LockManager, LockMode
from repro.simulator.addresses import AddressSpace

class Recorder:
    def __init__(self):
        self.addrs = []
    def enter(self, name):
        pass
    def compute(self, cost):
        pass
    def data(self, addr, write=False, dependent=False):
        self.addrs.append(addr)

lm = LockManager(AddressSpace())
resources = [("stock", 3, 17), ("district", 0, 4), "warehouse:2",
             ("customer", 1, 2, 3), ("order", 99), "item:41"]
for r in resources:
    lm.acquire(7, r, LockMode.EXCLUSIVE)
rec = Recorder()
lm.release_all(7, rec)
print(",".join(str(a) for a in rec.addrs))
"""


def test_release_order_is_hashseed_independent():
    """The trace replayed by release_all must not vary with the hash
    seed (PYTHONHASHSEED differs across CI processes)."""
    outputs = []
    for seed in ("0", "1"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), os.pardir, "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        proc = subprocess.run([sys.executable, "-c", _HASHSEED_SCRIPT],
                              capture_output=True, text=True, env=env,
                              check=True)
        outputs.append(proc.stdout.strip())
    assert outputs[0] == outputs[1]
    assert outputs[0]  # non-empty: the tracer really saw the releases
    assert len(outputs[0].split(",")) == 6
