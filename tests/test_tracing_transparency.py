"""Tracing transparency: recording a trace never changes query answers.

The engine runs every query twice in these tests — once under a
MemoryTracer, once under the NullTracer — and the answers must be
identical.  This is the core soundness property of the bridge design: the
characterization instrument cannot perturb the thing it measures.
"""

import pytest

from repro.db import Database, PageLayout, Schema
from repro.db.exec import (
    AggSpec,
    Filter,
    HashAggregate,
    HashJoin,
    MergeJoin,
    SeqScan,
    Sort,
    TopN,
)
from repro.db.types import char, float64, int64


def build_db(layout=PageLayout.NSM):
    db = Database()
    t = db.catalog.create_table(Schema("t", [
        int64("k"), int64("g"), float64("v"), char("pad", 20),
    ]), layout=layout)
    for i in range(400):
        t.append((i, i % 9, (i * 37 % 100) / 4.0, "x"))
    u = db.catalog.create_table(Schema("u", [int64("g"), float64("w")]))
    for g in range(9):
        u.append((g, g * 1.5))
    return db, t, u


def run_plan(traced: bool, layout=PageLayout.NSM):
    db, t, u = build_db(layout)
    sess = db.session("c", traced=traced)
    ctx = sess.ctx
    plan = HashAggregate(
        ctx,
        HashJoin(
            ctx,
            Filter(ctx, SeqScan(ctx, u), lambda r: r[0] != 4),
            SeqScan(ctx, t),
            build_key=lambda r: r[0],
            probe_key=lambda r: r[1],
        ),
        lambda r: r[0],
        [AggSpec("count"), AggSpec("sum", lambda r: r[4], "sv"),
         AggSpec("avg", lambda r: r[4], "av")],
    )
    out = plan.execute()
    if traced:
        trace = sess.finish()
        assert len(trace) > 0
    return out


class TestTransparency:
    def test_join_aggregate_pipeline(self):
        assert run_plan(True) == run_plan(False)

    def test_pax_layout(self):
        assert (run_plan(True, PageLayout.PAX)
                == run_plan(False, PageLayout.PAX))

    def test_sort_and_topn(self):
        for traced in (True, False):
            db, t, _ = build_db()
            sess = db.session("c", traced=traced)
            ctx = sess.ctx
            srt = Sort(ctx, SeqScan(ctx, t), key=lambda r: (r[2], r[0]))
            tn = TopN(ctx, SeqScan(ctx, t), key=lambda r: r[2], n=7)
            if traced:
                sorted_rows = srt.execute()
                top_rows = tn.execute()
                sess.finish()
            else:
                ref_sorted = srt.execute()
                ref_top = tn.execute()
        assert sorted_rows == ref_sorted
        assert top_rows == ref_top

    def test_merge_join(self):
        results = {}
        for traced in (True, False):
            db, t, u = build_db()
            ctx = db.session("c", traced=traced).ctx
            mj = MergeJoin(
                ctx,
                Sort(ctx, SeqScan(ctx, u), key=lambda r: r[0]),
                Sort(ctx, SeqScan(ctx, t), key=lambda r: r[1]),
                left_key=lambda r: r[0], right_key=lambda r: r[1],
            )
            results[traced] = sorted(mj.execute())
        assert results[True] == results[False]

    def test_tpch_queries_transparent(self):
        import random
        from repro.workloads.tpch import TpchDatabase

        answers = {}
        for traced in (True, False):
            tpch = TpchDatabase(scale=0.02, seed=5)
            sess = tpch.db.session("c", traced=traced)
            rng = random.Random(9)
            answers[traced] = (
                tpch.q1(sess, rng, 0, 2000),
                tpch.q6(sess, rng, 0, 2000),
            )
            if traced:
                sess.finish()
        assert answers[True] == answers[False]

    def test_tpcc_state_transparent(self):
        """Transaction effects are identical traced vs untraced."""
        from repro.workloads.tpcc import TpccDatabase
        import random

        states = {}
        for traced in (True, False):
            tpcc = TpccDatabase(scale=0.05, seed=8)
            sess = tpcc.db.session("c", traced=traced)
            rng = random.Random(77)
            for _ in range(6):
                tpcc.tx_neworder(sess, rng, home_w=0)
                tpcc.tx_payment(sess, rng, home_w=0)
            if traced:
                sess.finish()
            states[traced] = (
                [row for _, row in tpcc.orders.scan()],
                tpcc.warehouse.get(0),
                tpcc.district.get(0),
            )
        assert states[True] == states[False]
