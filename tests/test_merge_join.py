"""Tests for the sort-merge join."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, Schema
from repro.db.exec import MergeJoin, SeqScan, Sort
from repro.db.types import int64


def table(db, name, rows):
    heap = db.catalog.create_table(Schema(name, [int64("k"), int64("v")]))
    for row in rows:
        heap.append(row)
    return heap


def join_rows(left_rows, right_rows):
    db = Database()
    lt = table(db, "l", left_rows)
    rt = table(db, "r", right_rows)
    ctx = db.session("c", traced=False).ctx
    mj = MergeJoin(ctx, SeqScan(ctx, lt), SeqScan(ctx, rt),
                   left_key=lambda r: r[0], right_key=lambda r: r[0])
    return mj.execute()


class TestMergeJoin:
    def test_one_to_one(self):
        out = join_rows([(1, 10), (2, 20), (4, 40)],
                        [(2, 200), (3, 300), (4, 400)])
        assert out == [(2, 20, 2, 200), (4, 40, 4, 400)]

    def test_many_to_many_cross_product(self):
        out = join_rows([(1, 1), (1, 2)], [(1, 10), (1, 20), (1, 30)])
        assert len(out) == 6
        assert {(a, b) for _, a, _, b in out} == {
            (v, w) for v in (1, 2) for w in (10, 20, 30)}

    def test_disjoint_inputs(self):
        assert join_rows([(1, 0)], [(2, 0)]) == []

    def test_empty_side(self):
        assert join_rows([], [(1, 0)]) == []
        assert join_rows([(1, 0)], []) == []

    def test_out_of_order_input_rejected(self):
        with pytest.raises(ValueError):
            join_rows([(2, 0), (1, 0)], [(1, 0), (2, 0)])

    def test_schema_renames_duplicates(self):
        db = Database()
        lt = table(db, "l", [(1, 1)])
        rt = table(db, "r", [(1, 2)])
        ctx = db.session("c", traced=False).ctx
        mj = MergeJoin(ctx, SeqScan(ctx, lt), SeqScan(ctx, rt),
                       left_key=lambda r: r[0], right_key=lambda r: r[0])
        names = [c.name for c in mj.schema.columns]
        assert len(names) == len(set(names))

    def test_composes_with_sort(self):
        db = Database()
        lt = table(db, "l", [(3, 1), (1, 2), (2, 3)])
        rt = table(db, "r", [(2, 9), (3, 8), (1, 7)])
        ctx = db.session("c", traced=False).ctx
        mj = MergeJoin(
            ctx,
            Sort(ctx, SeqScan(ctx, lt), key=lambda r: r[0]),
            Sort(ctx, SeqScan(ctx, rt), key=lambda r: r[0]),
            left_key=lambda r: r[0], right_key=lambda r: r[0],
        )
        assert [r[0] for r in mj.execute()] == [1, 2, 3]


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 20), st.integers()), max_size=40),
    st.lists(st.tuples(st.integers(0, 20), st.integers()), max_size=40),
)
def test_merge_join_matches_hash_join(left, right):
    """Property: merge join over sorted inputs == hash join output."""
    left = sorted(left)
    right = sorted(right)
    out = join_rows(left, right)
    naive = [l + r for l in left for r in right if l[0] == r[0]]
    assert sorted(out) == sorted(naive)
