"""Tests for the computed dense index (virtual-table companion)."""

import pytest

from repro.db.computed_index import ComputedDenseIndex
from repro.db.tracer import CodeRegistry, MemoryTracer
from repro.simulator.addresses import PAGE_SIZE, AddressSpace
from repro.simulator.trace import FLAG_DEPENDENT


def make(n_keys=100_000, fanout=256):
    return ComputedDenseIndex(AddressSpace(), "idx", n_keys, fanout=fanout)


class TestShape:
    def test_height_matches_btree_math(self):
        idx = make(n_keys=100_000, fanout=256)
        # 100k keys / 256 = 391 leaves; /256 = 2; /256 = 1 root -> height 3.
        assert idx.height == 3
        assert idx.level_nodes == [1, 2, 391]

    def test_single_leaf_tree(self):
        idx = make(n_keys=100, fanout=256)
        assert idx.height == 1
        assert idx.n_nodes == 1

    def test_node_count(self):
        idx = make(n_keys=10_000, fanout=100)
        assert idx.n_nodes == sum(idx.level_nodes)

    def test_validation(self):
        with pytest.raises(ValueError):
            make(n_keys=0)
        with pytest.raises(ValueError):
            make(fanout=2)


class TestAddressing:
    def test_nodes_page_sized_and_disjoint(self):
        idx = make(n_keys=5000, fanout=64)
        addrs = [
            idx.node_addr(lvl, n)
            for lvl, count in enumerate(idx.level_nodes)
            for n in range(count)
        ]
        assert len(set(addrs)) == len(addrs)
        assert all(a % PAGE_SIZE == 0 for a in addrs)

    def test_node_addr_bounds(self):
        idx = make(n_keys=5000, fanout=64)
        with pytest.raises(IndexError):
            idx.node_addr(99, 0)
        with pytest.raises(IndexError):
            idx.node_addr(0, 1)  # root level has exactly one node


class TestDescent:
    def test_path_root_to_leaf(self):
        idx = make(n_keys=100_000, fanout=256)
        path = idx.descent_path(70_000)
        assert len(path) == idx.height
        assert path[0] == idx.node_addr(0, 0)
        assert path[-1] == idx.node_addr(idx.height - 1, 70_000 // 256)

    def test_adjacent_keys_share_upper_levels(self):
        idx = make(n_keys=100_000, fanout=256)
        a = idx.descent_path(1000)
        b = idx.descent_path(1001)
        assert a[:-1] == b[:-1] and a[-1] == b[-1]  # same leaf too
        c = idx.descent_path(99_000)
        assert a[0] == c[0] and a[-1] != c[-1]

    def test_search_returns_key_as_rid(self):
        idx = make()
        assert idx.search(777) == 777

    def test_search_out_of_range(self):
        idx = make(n_keys=10)
        with pytest.raises(KeyError):
            idx.search(10)

    def test_search_emits_dependent_descent(self):
        space = AddressSpace()
        idx = ComputedDenseIndex(space, "idx", 100_000)
        tracer = MemoryTracer(CodeRegistry(space), "c")
        idx.search(5, tracer)
        trace = tracer.finish()
        deps = [f & FLAG_DEPENDENT for f in trace.flags]
        assert sum(bool(d) for d in deps) >= 2 * idx.height

    def test_range_yields_dense_keys(self):
        idx = make(n_keys=1000, fanout=16)
        got = [k for k, _ in idx.range(37, 61)]
        assert got == list(range(37, 61))

    def test_range_clamps(self):
        idx = make(n_keys=100)
        assert [k for k, _ in idx.range(-5, 3)] == [0, 1, 2]
        assert list(idx.range(98, 300))[-1][0] == 99
        assert list(idx.range(50, 50)) == []
