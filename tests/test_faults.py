"""The deterministic fault injector and recovery under injected chaos.

Two contracts, both load-bearing for trusting any figure produced under
``REPRO_FAULTS``:

- Inertness: with the knob unset, every hook is a no-op that perturbs
  nothing — no RNG, no result drift.
- Recovery determinism: a sweep that survives injected worker crashes,
  hangs, transient exceptions, and corrupt cache entries returns results
  field-for-field identical to a fault-free serial run.
"""

import os
from dataclasses import fields

import pytest

from repro.core import faults
from repro.core.experiment import Experiment
from repro.core.faults import FaultPlan, InjectedFault
from repro.core.parallel import RunSpec, SweepError, run_specs
from repro.simulator.configs import fc_cmp

SCALE = 0.01
CYCLES = 5_000


def _specs(n: int = 3, kind: str = "dss") -> list[RunSpec]:
    return [
        RunSpec(fc_cmp(n_cores=4, l2_nominal_mb=mb, scale=SCALE), kind)
        for mb in (1.0, 2.0, 4.0, 8.0)[:n]
    ]


@pytest.fixture
def no_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


def _assert_identical(expected, got) -> None:
    assert len(expected) == len(got)
    for a, b in zip(expected, got):
        for f in fields(a):
            assert getattr(a, f.name) == getattr(b, f.name), (
                f"field {f.name!r} diverged under faults"
            )


class TestPlanParsing:
    def test_indexed_directives(self):
        plan = FaultPlan.parse("crash@1;exec@0x3;hang@2:30;corrupt@4")
        assert [r.site for r in plan.rules] == [
            "crash", "exec", "hang", "corrupt"]
        assert plan.rules[1].count == 3
        assert plan.rules[2].arg == 30.0

    def test_seed_and_probabilistic(self):
        plan = FaultPlan.parse("exec~0.25; seed=7")
        assert plan.seed == 7
        assert plan.rules[0].prob == 0.25

    def test_blank_segments_ignored(self):
        assert FaultPlan.parse("; crash@0 ;;").rules[0].site == "crash"

    @pytest.mark.parametrize("text", [
        "explode@1", "crash", "crash@one", "exec~lots", "crash@1x", "hang@1:soon",
    ])
    def test_bad_directives_raise(self, text):
        with pytest.raises(ValueError, match="REPRO_FAULTS"):
            FaultPlan.parse(text)

    def test_indexed_rule_fires_on_bounded_attempts(self):
        plan = FaultPlan.parse("exec@2x2")
        assert plan.rule_for("exec", 2, attempt=0)
        assert plan.rule_for("exec", 2, attempt=1)
        assert plan.rule_for("exec", 2, attempt=2) is None
        assert plan.rule_for("exec", 1, attempt=0) is None
        assert plan.rule_for("crash", 2, attempt=0) is None

    def test_probability_draws_are_deterministic(self):
        a = FaultPlan.parse("exec~0.5;seed=1")
        b = FaultPlan.parse("exec~0.5;seed=1")
        pattern_a = [a.rule_for("exec", i) is not None for i in range(64)]
        pattern_b = [b.rule_for("exec", i) is not None for i in range(64)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)

    def test_seed_changes_the_pattern(self):
        a = FaultPlan.parse("exec~0.5;seed=1")
        b = FaultPlan.parse("exec~0.5;seed=2")
        assert ([a.rule_for("exec", i) is not None for i in range(64)]
                != [b.rule_for("exec", i) is not None for i in range(64)])


class TestInertness:
    def test_no_plan_when_unset(self, no_faults):
        assert faults.active_plan() is None

    def test_hooks_are_noops_when_disabled(self, no_faults):
        faults.maybe_crash(0)      # would os._exit if it fired
        faults.maybe_hang(0)       # would sleep for an hour
        faults.maybe_raise(0)      # would raise InjectedFault
        payload = b"precious bytes"
        assert faults.corrupt_bytes(0, payload) is payload
        assert faults.corrupt_bytes(None, payload) is payload

    def test_empty_value_is_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "   ")
        assert faults.active_plan() is None
        faults.maybe_raise(0)

    @pytest.mark.slow
    def test_disabled_injector_does_not_perturb_results(self, monkeypatch):
        specs = _specs(2)
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        baseline = run_specs(specs, SCALE, CYCLES, jobs=1)
        monkeypatch.setenv("REPRO_FAULTS", "")
        _assert_identical(baseline, run_specs(specs, SCALE, CYCLES, jobs=1))


class TestHookFiring:
    def test_exec_hook_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "exec@3")
        with pytest.raises(InjectedFault):
            faults.maybe_raise(3)
        faults.maybe_raise(3, attempt=1)  # one-shot: retry passes
        faults.maybe_raise(2)             # other indices untouched

    def test_corrupt_hook_replaces_payload(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "corrupt@1")
        garbage = faults.corrupt_bytes(1, b"payload")
        assert garbage != b"payload"
        import pickle
        with pytest.raises(Exception):
            pickle.loads(garbage)
        assert faults.corrupt_bytes(0, b"payload") == b"payload"

    def test_crash_hook_exits_the_process(self, monkeypatch):
        # Exercised in-process by stubbing os._exit: actually dying here
        # would take pytest with it (which is why the executor only fires
        # crash faults inside pool workers).
        monkeypatch.setenv("REPRO_FAULTS", "crash@0")
        codes = []
        monkeypatch.setattr(os, "_exit", codes.append)
        faults.maybe_crash(0)
        assert codes == [faults.CRASH_EXIT_CODE]

    def test_hang_hook_sleeps(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "hang@0:7.5")
        naps = []
        monkeypatch.setattr(faults.time, "sleep", naps.append)
        faults.maybe_hang(0)
        faults.maybe_hang(1)
        assert naps == [7.5]


@pytest.mark.slow
class TestRecoveryDeterminism:
    """Injected failures must change wall-clock time only, never results."""

    @pytest.fixture(scope="class")
    def baseline(self):
        env_faults = os.environ.pop("REPRO_FAULTS", None)
        try:
            return run_specs(_specs(), SCALE, CYCLES, jobs=1)
        finally:
            if env_faults is not None:
                os.environ["REPRO_FAULTS"] = env_faults

    def test_transient_exec_fault_is_retried_serially(self, monkeypatch,
                                                      baseline):
        monkeypatch.setenv("REPRO_FAULTS", "exec@0;exec@2")
        got = run_specs(_specs(), SCALE, CYCLES, jobs=1,
                        retries=2, backoff=0.0)
        _assert_identical(baseline, got)

    def test_worker_crash_is_isolated_and_rerun(self, monkeypatch, baseline):
        monkeypatch.setenv("REPRO_FAULTS", "crash@1")
        got = run_specs(_specs(), SCALE, CYCLES, jobs=3,
                        retries=2, backoff=0.0)
        _assert_identical(baseline, got)

    def test_hung_worker_is_timed_out_and_rerun(self, monkeypatch, baseline):
        monkeypatch.setenv("REPRO_FAULTS", "hang@0:60")
        got = run_specs(_specs(), SCALE, CYCLES, jobs=3,
                        retries=2, backoff=0.0, timeout=4.0)
        _assert_identical(baseline, got)

    def test_combined_chaos_matches_fault_free_serial(self, monkeypatch,
                                                      tmp_path, baseline):
        """The acceptance scenario: crashes + hangs + transient errors +
        corrupt cache entries in one sweep, results identical field for
        field to the fault-free serial run."""
        monkeypatch.setenv("REPRO_FAULTS",
                           "crash@1;hang@0:60;exec@2;corrupt@1")
        chaotic = Experiment(scale=SCALE, measure_cycles=CYCLES,
                             cache_dir=str(tmp_path))
        got = chaotic.run_many(_specs(), jobs=3, retries=3, backoff=0.0,
                               timeout=4.0)
        _assert_identical(baseline, got)

        # The corrupt@1 entry is unreadable on disk; a fresh fault-free
        # experiment recovers it by re-simulating, bit-for-bit.
        monkeypatch.delenv("REPRO_FAULTS")
        clean = Experiment(scale=SCALE, measure_cycles=CYCLES,
                           cache_dir=str(tmp_path))
        again = clean.run_many(_specs(), jobs=1)
        _assert_identical(baseline, again)
        assert clean.cache.errors == 1
        assert clean.sim_runs == 1  # only the corrupted point re-simulated

    def test_exhausted_retries_surface_structured_failures(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "exec@1x99")
        with pytest.raises(SweepError) as err:
            run_specs(_specs(), SCALE, CYCLES, jobs=1, retries=1,
                      backoff=0.0)
        (failure,) = err.value.failures
        assert failure.index == 1
        assert failure.kind == "error"
        assert failure.attempts == 2
        assert "InjectedFault" in failure.message
        # The rest of the grid still completed (fail_fast off).
        assert [r is not None for r in err.value.results] == [
            True, False, True]


class TestServiceSites:
    """The serve-tier sites (DESIGN.md §12.4): stall, slow, spurious."""

    def test_inert_without_a_plan(self, no_faults, monkeypatch):
        naps = []
        monkeypatch.setattr(faults.time, "sleep", naps.append)
        faults.maybe_stall(0)
        faults.maybe_slow(0)
        faults.maybe_spurious(0)
        assert naps == []

    def test_parse_accepts_service_sites(self):
        plan = FaultPlan.parse("stall@1:3;slow~0.5;spurious@0x2;seed=3")
        assert [r.site for r in plan.rules] == ["stall", "slow", "spurious"]
        assert plan.rules[0].arg == 3.0
        assert plan.rules[1].prob == 0.5
        assert plan.rules[2].count == 2

    def test_stall_sleeps_arg_or_default(self, monkeypatch):
        naps = []
        monkeypatch.setattr(faults.time, "sleep", naps.append)
        monkeypatch.setenv("REPRO_FAULTS", "stall@2:3.5")
        faults.maybe_stall(2)
        faults.maybe_stall(1)  # other indices untouched
        assert naps == [3.5]
        monkeypatch.setenv("REPRO_FAULTS", "stall@0")
        faults.maybe_stall(0)
        assert naps == [3.5, faults.DEFAULT_STALL_SECONDS]

    def test_slow_sleeps_arg_or_default(self, monkeypatch):
        naps = []
        monkeypatch.setattr(faults.time, "sleep", naps.append)
        monkeypatch.setenv("REPRO_FAULTS", "slow@1:0.25")
        faults.maybe_slow(1)
        faults.maybe_slow(0)
        assert naps == [0.25]
        monkeypatch.setenv("REPRO_FAULTS", "slow@0")
        faults.maybe_slow(0)
        assert naps == [0.25, faults.DEFAULT_SLOW_SECONDS]

    def test_spurious_raises_per_count_then_stops(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "spurious@0x2")
        with pytest.raises(InjectedFault):
            faults.maybe_spurious(0, attempt=0)
        with pytest.raises(InjectedFault):
            faults.maybe_spurious(0, attempt=1)
        faults.maybe_spurious(0, attempt=2)  # count exhausted: retry passes
        faults.maybe_spurious(1)             # other indices untouched
