"""The service under injected chaos: breaker lifecycle and degradation.

``REPRO_FAULTS`` drives the service's slow tier deterministically
(sites ``spurious``/``slow``/``stall``, indexed by simulation sequence
number), so the full breaker story — closed → open under consecutive
failures, degraded model-tier answers while open, half-open probe and
recovery — plays out without sleeping or real flakiness.  The breaker
clock is injected, so cooldowns advance by hand.
"""

import asyncio

import pytest

from repro.core.experiment import Experiment
from repro.serve import (
    CLOSED,
    OPEN,
    CircuitBreaker,
    DesignQuery,
    DesignService,
)



SCALE = 0.01
CYCLES = 5_000


class FakeClock:
    """Hand-advanced monotonic clock (breaker cooldowns, no sleeping)."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _query(mb: float, camp: str = "lc") -> DesignQuery:
    return DesignQuery(camp, cores=2, l2_mb=mb, banks=4, kind="dss")


def _service(model, faults: str, monkeypatch, clock=None,
             **kwargs) -> DesignService:
    monkeypatch.setenv("REPRO_FAULTS", faults)
    exp = Experiment(scale=SCALE, measure_cycles=CYCLES,
                     use_cache=False)
    kwargs.setdefault("sim_retries", 0)
    if clock is not None:
        kwargs.setdefault("breaker", CircuitBreaker(
            failure_threshold=2, cooldown_s=5.0, clock=clock))
        kwargs.setdefault("clock", clock)
    return DesignService(exp, model, **kwargs)


@pytest.mark.slow
class TestBreakerUnderFaults:
    def test_open_half_open_close_lifecycle(self, serve_model, monkeypatch):
        clock = FakeClock()
        svc = _service(serve_model, "spurious@0;spurious@1", monkeypatch,
                       clock=clock)

        async def go():
            async with svc:
                # Two injected slow-tier failures (sim seq 0 and 1):
                # each degrades its answer; the second opens the breaker.
                first = await svc.submit(_query(1.0))
                assert svc.breaker.state == CLOSED
                second = await svc.submit(_query(2.0))
                assert svc.breaker.state == OPEN
                # Open: the slow tier is skipped outright.
                third = await svc.submit(_query(4.0))
                # Cooldown elapses; the next request is the half-open
                # probe — sim seq 2 has no fault rule, so it succeeds
                # and closes the circuit.
                clock.advance(5.0)
                fourth = await svc.submit(_query(8.0))
                assert svc.breaker.state == CLOSED
                return first, second, third, fourth

        first, second, third, fourth = asyncio.run(go())
        for answer, note in ((first, "sim-failed"), (second, "sim-failed"),
                             (third, "breaker-open")):
            assert answer.tier == "model"
            assert answer.degraded
            assert answer.confidence == "degraded"
            assert answer.note == note
        assert fourth.tier == "simulated"
        assert not fourth.degraded
        stats = svc.stats()
        assert stats["sim"]["failed"] == 2
        assert stats["sim"]["completed"] == 1
        assert stats["breaker"]["opens"] == 1
        assert stats["degraded"] == 3
        assert svc.exp.sim_runs == 1  # only the recovered probe landed

    def test_breaker_events_reach_telemetry(self, serve_model, monkeypatch,
                                            tmp_path):
        clock = FakeClock()
        log = str(tmp_path / "svc.jsonl")
        monkeypatch.setenv("REPRO_FAULTS", "spurious@0;spurious@1")
        exp = Experiment(scale=SCALE, measure_cycles=CYCLES,
                         use_cache=False, telemetry=log)
        svc = DesignService(exp, serve_model, sim_retries=0,
                            breaker=CircuitBreaker(
                                failure_threshold=2, cooldown_s=5.0,
                                clock=clock), clock=clock)

        async def go():
            async with svc:
                await svc.submit(_query(1.0))
                await svc.submit(_query(2.0))
                clock.advance(5.0)
                await svc.submit(_query(4.0))

        asyncio.run(go())
        from repro.core import telemetry

        events = telemetry.load_events(log)
        failures = [e for e in events if e["ev"] == "svc_sim_fail"]
        assert [e["kind"] for e in failures] == ["error", "error"]
        states = [e["state"] for e in events if e["ev"] == "svc_breaker"]
        assert states == ["open", "half-open", "closed"]
        summary = telemetry.summarize_service(events)
        assert summary["sim_failures"] == {"error": 2}
        assert summary["breaker_transitions"] == states


@pytest.mark.slow
class TestSlowAndStallSites:
    def test_slow_site_delays_but_completes(self, serve_model, monkeypatch):
        svc = _service(serve_model, "slow@0:0.01", monkeypatch)

        async def go():
            async with svc:
                return await svc.submit(_query(1.0))

        answer = asyncio.run(go())
        assert answer.tier == "simulated"
        assert svc.breaker.state == CLOSED

    def test_stall_site_trips_the_timeout(self, serve_model, monkeypatch):
        svc = _service(serve_model, "stall@0:0.5", monkeypatch,
                       sim_timeout_s=0.05)

        async def go():
            async with svc:
                return await svc.submit(_query(1.0))

        answer = asyncio.run(go())
        assert answer.tier == "model"
        assert answer.degraded
        assert answer.note == "sim-failed"
        stats = svc.stats()
        assert stats["sim"]["timeouts"] == 1
        assert svc.breaker.failures == 1

    def test_spurious_is_retryable(self, serve_model, monkeypatch):
        # attempt 0 faults, attempt 1 does not: the slow tier's retry
        # loop (PR 2 semantics) absorbs the transient without the
        # breaker ever seeing a failure.
        svc = _service(serve_model, "spurious@0", monkeypatch,
                       sim_retries=1, sim_backoff=0.001)

        async def go():
            async with svc:
                return await svc.submit(_query(1.0))

        answer = asyncio.run(go())
        assert answer.tier == "simulated"
        assert svc.breaker.failures == 0
        assert svc.stats()["sim"]["failed"] == 0
