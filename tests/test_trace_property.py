"""Property-based tests for the columnar trace pipeline.

Hypothesis drives randomized event streams through the full build →
serialize → load → replay path and through every public view, checking
the invariants the differential oracle checks on shaped workloads:

- a build → freeze → thaw round-trip through the trace store preserves
  every access (and every piece of trace/workload metadata) exactly;
- ``sliced`` views and ``client_view`` thread filtering agree with naive
  Python list slicing/filtering over the decoded accesses;
- degenerate shapes — zero-length traces, single-access traces — build,
  serialize, and replay cleanly.
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parallel import WARM_FRACTIONS
from repro.simulator.configs import fc_cmp
from repro.simulator.machine import Machine
from repro.simulator.trace import (
    MAX_EVENT_ICOUNT,
    TraceBuilder,
    Workload,
)
from repro.workloads.tracestore import TraceStore

SCALE = 0.02

#: One randomized event: (icount, addr, flags).  icounts straddle the
#: clamp boundary; flags cover all five defined bits.
EVENTS = st.lists(
    st.tuples(
        st.integers(0, MAX_EVENT_ICOUNT + 2**34),
        st.integers(0, 2**40),
        st.integers(0, 0x1F),
    ),
    max_size=120,
)


def _build(name, events, n_regions=3):
    tb = TraceBuilder(name, ilp=1.8, branch_mpki=4.0, ilp_inorder=1.1)
    rids = [tb.register_code(f"m{i}", 0x2000 * (i + 1), 8)
            for i in range(n_regions)]
    for j, (icount, addr, flags) in enumerate(events):
        tb.event(icount, addr, flags, rids[j % n_regions])
    return tb.build()


def _expected(events, n_regions=3):
    return [
        (min(ic, MAX_EVENT_ICOUNT), addr, flags, j % n_regions)
        for j, (ic, addr, flags) in enumerate(events)
    ]


@settings(max_examples=30, deadline=None)
@given(per_client=st.lists(EVENTS, min_size=1, max_size=4))
def test_store_roundtrip_preserves_every_access(per_client):
    traces = [_build(f"c{i}", ev) for i, ev in enumerate(per_client)]
    wl = Workload(name="prop", traces=traces, kind="dss", saturated=False,
                  metadata={"scale": 1.0, "tag": "prop"})
    with tempfile.TemporaryDirectory() as root:
        store = TraceStore(root)
        store.put(("prop", 0), wl)
        got = store.get(("prop", 0))
    assert got is not None
    assert (got.name, got.kind, got.saturated, got.metadata) == \
        (wl.name, wl.kind, wl.saturated, wl.metadata)
    assert len(got.traces) == len(traces)
    for thawed, events in zip(got.traces, per_client):
        assert list(thawed.accesses()) == _expected(events)
        assert [(f.name, f.base, f.n_lines) for f in thawed.footprints] == \
            [("m0", 0x2000, 8), ("m1", 0x4000, 8), ("m2", 0x6000, 8)]
        assert (thawed.ilp, thawed.ilp_inorder, thawed.branch_mpki) == \
            (1.8, 1.1, 4.0)


@settings(max_examples=40, deadline=None)
@given(events=EVENTS, cut=st.tuples(st.integers(0, 130), st.integers(0, 130)))
def test_sliced_view_equals_naive_list_slice(events, cut):
    tr = _build("s", events)
    naive = _expected(events)
    lo, hi = min(cut), max(cut)
    view = tr.sliced(lo, hi)
    assert list(view.accesses()) == naive[lo:hi]
    assert len(view) == len(naive[lo:hi])
    # And the open-ended form covers the tail.
    assert list(tr.sliced(lo).accesses()) == naive[lo:]


@settings(max_examples=25, deadline=None)
@given(per_client=st.lists(EVENTS, min_size=1, max_size=5),
       picks=st.lists(st.integers(0, 4), min_size=1, max_size=5))
def test_client_view_equals_naive_thread_filtering(per_client, picks):
    traces = [_build(f"c{i}", ev) for i, ev in enumerate(per_client)]
    wl = Workload(name="prop", traces=traces, kind="oltp", saturated=True)
    indices = [p % len(traces) for p in picks]
    view = wl.client_view(indices)
    naive = [traces[i] for i in indices]
    assert view.n_clients == len(naive)
    for got, want in zip(view.traces, naive):
        assert got is want                   # shared, not copied
        assert list(got.accesses()) == list(want.accesses())
    assert (view.kind, view.saturated) == (wl.kind, wl.saturated)


def _replay(traces, mode="throughput"):
    wl = Workload(name="edge", traces=traces, kind="dss", saturated=False)
    config = fc_cmp(n_cores=2, l2_nominal_mb=1.0, scale=SCALE)
    return Machine(config).run(wl, mode=mode, measure_cycles=5_000,
                               warm_fraction=WARM_FRACTIONS["dss"])


class TestDegenerateShapes:
    def test_zero_length_trace_builds_and_serializes(self):
        tr = _build("empty", [])
        assert len(tr) == 0 and list(tr.accesses()) == []
        wl = Workload(name="z", traces=[tr, _build("live", [(5, 0x40, 0)])])
        with tempfile.TemporaryDirectory() as root:
            store = TraceStore(root)
            store.put(("z", 0), wl)
            got = store.get(("z", 0))
        assert got is not None
        assert len(got.traces[0]) == 0
        assert list(got.traces[1].accesses()) == [(5, 0x40, 0, 0)]

    def test_zero_length_trace_replays_cleanly(self):
        """An empty client alongside live ones cannot advance a context:
        it is dropped, the live traces measure normally."""
        live = _build("live", [(10, 0x1000 + 64 * i, 0) for i in range(50)])
        result = _replay([_build("empty", []), live])
        baseline = _replay([live])
        assert result.retired == baseline.retired
        assert result.ipc == baseline.ipc

    def test_all_empty_bundle_measures_empty_window(self):
        result = _replay([_build("e0", []), _build("e1", [])])
        assert result.retired == 0 and result.ipc == 0.0

    def test_single_access_trace_replays_cleanly(self):
        tr = _build("one", [(7, 0x2040, 0x1)])
        result = _replay([tr])
        assert result.retired > 0
        response = _replay([tr], mode="response")
        assert response.response_cycles is not None
        assert response.response_cycles > 0
