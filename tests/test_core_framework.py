"""Tests for the characterization framework: taxonomy, counters,
reporting, historic data, validation math, and the experiment runner."""

import pytest

from repro.core import historic, reporting
from repro.core.breakdown import Breakdown
from repro.core.counters import (
    PM_CYC,
    PM_DATA_FROM_L2,
    PM_INST_CMPL,
    PM_LD_MISS_L1,
    PM_LD_REF,
    cpi_stack_from_breakdown,
    extract,
    miss_rates,
)
from repro.core.taxonomy import Camp, Regime, WorkloadKind, grid, hides_stalls, table1
from repro.core.validation import OPENPOWER720_DSS_CPI, ValidationReport
from repro.simulator.hierarchy import HierarchyStats
from repro.simulator.machine import MachineResult


class TestTaxonomy:
    def test_grid_has_eight_unique_cells(self):
        cells = grid()
        assert len(cells) == 8
        assert len({c.label for c in cells}) == 8

    def test_table1_axes(self):
        rows = table1()
        assert rows[0].camp is Camp.FAT
        assert rows[1].camp is Camp.LEAN
        assert rows[0].core_size_ratio == 3 * rows[1].core_size_ratio

    def test_camp_core_params(self):
        assert Camp.FAT.core_params.n_contexts == 1
        assert Camp.LEAN.core_params.n_contexts == 4
        assert Camp.LEAN.core_params.inorder_issue

    def test_regime_metrics(self):
        assert Regime.UNSATURATED.metric == "response_time"
        assert Regime.SATURATED.metric == "throughput"

    def test_only_lean_saturated_hides_stalls(self):
        hiders = [c for c in grid() if hides_stalls(c)]
        assert len(hiders) == 2  # lean x saturated x {oltp, dss}
        assert all(c.camp is Camp.LEAN for c in hiders)
        assert all(c.regime is Regime.SATURATED for c in hiders)


def fake_result(**kw):
    hs = HierarchyStats()
    hs.data_accesses = 100
    hs.data_level_counts = [50, 5, 30, 10, 5]
    hs.instr_blocks = 10
    defaults = dict(
        config_name="cfg", workload_name="wl",
        breakdown=Breakdown(computation=400, i_l2=50, d_l2=200, d_mem=100,
                            other=50),
        per_core=[Breakdown(computation=400, i_l2=50, d_l2=200, d_mem=100,
                            other=50)],
        retired=400, elapsed=1000.0, ipc=0.4, response_cycles=None,
        hier_stats=hs, l2_miss_rate=0.25,
    )
    defaults.update(kw)
    return MachineResult(**defaults)


class TestCounters:
    def test_extract(self):
        c = extract(fake_result())
        assert c[PM_CYC] == 1000
        assert c[PM_INST_CMPL] == 400
        assert c[PM_LD_REF] == 100
        assert c[PM_LD_MISS_L1] == 50
        assert c[PM_DATA_FROM_L2] == 30

    def test_miss_rates(self):
        rates = miss_rates(fake_result())
        assert rates["l1d_miss_rate"] == 0.5
        assert rates["l2_fraction"] == 0.3
        assert rates["offchip_fraction"] == 0.15
        assert rates["l2_miss_rate"] == 0.25

    def test_cpi_stack_shares(self):
        stack = cpi_stack_from_breakdown(
            Breakdown(computation=200, d_l2=100, i_l2=60, other=40), 100)
        assert stack["computation"] == 2.0
        assert stack["d_stalls"] == 1.0
        assert stack["i_stalls"] == 0.6
        assert stack["other"] == 0.4


class TestValidationReport:
    def test_shares_and_within(self):
        report = ValidationReport(
            ours={"computation": 0.4, "i_stalls": 0.2, "d_stalls": 0.5,
                  "other": 0.1},
            reference=OPENPOWER720_DSS_CPI,
            total_delta=0.0,
            share_deltas={"computation": 0.05, "i_stalls": -0.02,
                          "d_stalls": 0.1, "other": -0.13},
            comp_lower_than_hw=True,
            dstall_higher_than_hw=True,
        )
        assert report.within(0.15)
        assert not report.within(0.05)
        shares = report.shares(report.ours)
        assert sum(shares.values()) == pytest.approx(1.0)


class TestHistoric:
    def test_trends_sorted_and_plausible(self):
        sizes = historic.cache_size_trend()
        assert sizes == sorted(sizes)
        assert sizes[0][1] < 64          # late-80s caches in KB
        assert sizes[-1][1] >= 16 * 1024  # mid-2000s megacaches

    def test_latency_trend_rises(self):
        lat = historic.latency_trend()
        early = [v for y, v in lat if y < 2000]
        late = [v for y, v in lat if y >= 2003]
        assert max(early) < max(late)

    def test_growth_metrics(self):
        assert historic.growth_factor_per_decade() > 10
        assert historic.latency_growth_over_decade() > 2


class TestReporting:
    def test_format_table_aligns(self):
        out = reporting.format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_series_scales_bars(self):
        out = reporting.format_series("s", [(1.0, 1.0), (2.0, 2.0)])
        lines = out.splitlines()
        assert lines[2].count("#") == 2 * lines[1].count("#")

    def test_format_series_empty(self):
        assert "no points" in reporting.format_series("s", [])

    def test_breakdown_bar_percentages(self):
        out = reporting.format_breakdown_bar(
            "x", {"computation": 1.0, "d_stalls": 3.0})
        assert "computation=25.0%" in out
        assert "d_stalls=75.0%" in out

    def test_paper_vs_measured_headers(self):
        out = reporting.paper_vs_measured([("c", "p", "m")])
        assert "claim" in out and "paper" in out and "measured" in out
