"""The model and explorer are read-only consumers of the simulator
(ISSUE 6 satellite).

Both layers are pure functions of :class:`MachineResult` documents, so
adding them must not change what the simulator produces: the cache salt
``CODE_VERSION`` stays at ``repro-sim-v1`` (no invalidation of existing
result caches), and a run that flows through model fitting is
bit-identical to the same run performed directly.
"""

import json

import pytest

from repro.core.experiment import Experiment
from repro.core.parallel import CODE_VERSION
from repro.model.calibrate import config_for, fit

SCALE = 0.01
CYCLES = 5_000
SIZES = (1.0, 4.0)
UNSAT = (4.0,)


def _exp():
    return Experiment(scale=SCALE, measure_cycles=CYCLES, use_cache=False)


def test_cache_salt_unchanged():
    """The model/explorer PR adds only result consumers; existing
    simulator caches must stay valid."""
    assert CODE_VERSION == "repro-sim-v1"


@pytest.mark.slow
class TestReadOnly:
    def test_fit_leaves_results_bit_identical(self):
        """The same (config, kind, regime) run yields an identical
        serialized result whether or not model fitting consumed it."""
        config = config_for("fc", SIZES[0], SCALE)
        baseline = _exp().run(config, "dss", "saturated").to_dict()

        exp = _exp()
        model = fit(exp, kinds=("dss",), sizes=SIZES, unsat_sizes=UNSAT)
        through_fit = exp.run(config, "dss", "saturated").to_dict()
        assert json.dumps(through_fit, sort_keys=True) == \
            json.dumps(baseline, sort_keys=True)
        assert model.signatures  # the fit really happened

    def test_fit_does_not_corrupt_shared_state(self):
        """Fitting (closed-form inversion + predictions) must not mutate
        workload traces or config state a later fresh run depends on."""
        config = config_for("lc", SIZES[0], SCALE)
        before = _exp().run(config, "dss", "saturated").to_dict()
        fit(_exp(), kinds=("dss",), sizes=SIZES, unsat_sizes=UNSAT)
        after = _exp().run(config, "dss", "saturated").to_dict()
        assert after == before

    def test_fit_is_deterministic(self):
        """Two independent fits on fresh experiments serialize to the
        same JSON document."""
        doc_a = fit(_exp(), kinds=("dss",), sizes=SIZES,
                    unsat_sizes=UNSAT).to_json_dict()
        doc_b = fit(_exp(), kinds=("dss",), sizes=SIZES,
                    unsat_sizes=UNSAT).to_json_dict()
        assert json.dumps(doc_a, sort_keys=True) == \
            json.dumps(doc_b, sort_keys=True)
