"""Bit-for-bit determinism of parallel sweep execution.

Parallelizing a simulator is only safe if it cannot change results: these
tests run a Fig. 6-style L2-size sweep through ``Experiment.run_many`` at
``jobs=1`` (in-process) and ``jobs=4`` (process pool) and assert every
``MachineResult`` field is identical to what the serial ``Experiment.run``
path produces, for both workload kinds.
"""

import os
import subprocess
import sys
from dataclasses import fields

import pytest

from repro.core.experiment import Experiment
from repro.core.parallel import RunSpec
from repro.simulator.configs import fc_cmp

SCALE = 0.02
CYCLES = 40_000
#: A Fig. 6-style subset of L2 sizes: enough points to exercise the pool,
#: small enough to keep the suite fast.
SIZES_MB = (1.0, 4.0, 16.0)


def _experiment() -> Experiment:
    return Experiment(scale=SCALE, measure_cycles=CYCLES, use_cache=False)


def _sweep_specs(scale: float, kind: str) -> list[RunSpec]:
    return [
        RunSpec(fc_cmp(n_cores=4, l2_nominal_mb=size, scale=scale), kind)
        for size in SIZES_MB
    ]


def _assert_identical(serial, parallel) -> None:
    assert len(serial) == len(parallel)
    for size, a, b in zip(SIZES_MB, serial, parallel):
        for f in fields(a):
            assert getattr(a, f.name) == getattr(b, f.name), (
                f"field {f.name!r} diverged at {size} MB"
            )
        # Dataclass equality covers the same ground in one shot; keep it
        # as a belt-and-braces check on the field loop above.
        assert a == b


@pytest.mark.slow
@pytest.mark.parametrize("kind", ["oltp", "dss"])
@pytest.mark.parametrize("jobs", [1, 4])
def test_run_many_matches_serial(kind, jobs):
    serial_exp = _experiment()
    serial = [
        serial_exp.run(spec.config, kind)
        for spec in _sweep_specs(SCALE, kind)
    ]
    parallel_exp = _experiment()
    parallel = parallel_exp.run_many(_sweep_specs(SCALE, kind), jobs=jobs)
    assert parallel_exp.sim_runs == len(SIZES_MB)
    _assert_identical(serial, parallel)


@pytest.mark.slow
def test_run_many_deduplicates_and_memoizes():
    exp = _experiment()
    spec = _sweep_specs(SCALE, "dss")[0]
    results = exp.run_many([spec, spec, spec], jobs=2)
    assert exp.sim_runs == 1
    assert results[0] == results[1] == results[2]
    # A later serial run of the same point is a memo hit, not a re-sim.
    again = exp.run(spec.config, "dss")
    assert exp.sim_runs == 1
    assert again == results[0]


#: Digest script run both here and in a fresh interpreter: a repr of the
#: fields that summarize one OLTP simulation.  OLTP exercises the lock
#: manager, historically the hash-order-dependent path.
_DIGEST_SNIPPET = """
from repro.core.parallel import RunSpec, execute
from repro.simulator.configs import fc_cmp
spec = RunSpec(fc_cmp(n_cores=4, l2_nominal_mb=4.0, scale={scale}), "oltp")
r = execute(spec, {scale}, {cycles})
print(repr((r.ipc, r.retired, r.breakdown, r.hier_stats, r.l2_miss_rate)))
"""


@pytest.mark.slow
def test_identical_across_interpreters_and_hash_seeds():
    """Results must not depend on PYTHONHASHSEED (set/dict iteration
    order), or the persistent cache would recall values a fresh process
    could never reproduce."""
    code = _DIGEST_SNIPPET.format(scale=SCALE, cycles=CYCLES)
    digests = []
    src_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                           "src")
    for hash_seed in ("0", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_dir] + [p for p in (env.get("PYTHONPATH"),) if p])
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, text=True,
            capture_output=True, check=True,
        )
        digests.append(proc.stdout.strip())
    assert digests[0] == digests[1]


@pytest.mark.slow
def test_run_many_accepts_tuples_and_mixed_regimes():
    exp = _experiment()
    config = fc_cmp(n_cores=4, l2_nominal_mb=4.0, scale=SCALE)
    results = exp.run_many([
        (config, "dss"),
        RunSpec(config, "dss", "unsaturated"),
    ], jobs=2)
    assert results[0].response_cycles is None
    assert results[1].response_cycles is not None
    assert results[0] == exp.run(config, "dss")
    assert results[1] == exp.run(config, "dss", "unsaturated")
