"""Eager validation of the contention knobs at every entry point.

A typo'd ``cc_mode`` or a negative theta must fail at construction with
a message naming the parameter — not hours later inside a sweep, and
never by silently running the default workload instead.
"""

import pytest

from repro.core.parallel import RunSpec
from repro.db.txn import CC_MODES, validate_cc_mode
from repro.simulator.configs import fc_cmp
from repro.workloads.contention import (
    SkewSpec,
    as_skew,
    simulate_contention,
)
from repro.workloads.driver import workload_for
from repro.workloads.tpcc import TpccDatabase

SCALE = 0.01


def test_cc_modes_registry():
    assert CC_MODES == ("2pl", "partitioned")
    for mode in CC_MODES:
        assert validate_cc_mode(mode) == mode


@pytest.mark.parametrize("bad", ["mvcc", "2PL", "", "occ", None, 2])
def test_unknown_cc_mode_rejected(bad):
    with pytest.raises(ValueError, match="cc_mode"):
        validate_cc_mode(bad)


def test_skew_spec_defaults_inactive():
    spec = SkewSpec()
    assert not spec.active
    assert as_skew(None) == spec
    assert as_skew(spec) is spec


@pytest.mark.parametrize("kwargs", [
    {"theta": -0.1},
    {"theta": float("nan")},
    {"hot_warehouses": 0},
    {"hot_warehouses": -3},
    {"hot_warehouses": True},
    {"hot_warehouses": 2.0},
    {"cross_rate": -0.01},
    {"cross_rate": 1.01},
])
def test_bad_skew_parameters_rejected(kwargs):
    with pytest.raises((ValueError, TypeError)):
        SkewSpec(**kwargs)


@pytest.mark.parametrize("kwargs", [
    {"theta": 0.0},
    {"theta": 2.5},
    {"hot_warehouses": 1},
    {"cross_rate": 0.0},
    {"cross_rate": 1.0},
])
def test_edge_skew_parameters_accepted(kwargs):
    spec = SkewSpec(**kwargs)
    assert spec.key()  # canonical form exists


def test_as_skew_rejects_foreign_types():
    with pytest.raises(TypeError):
        as_skew({"theta": 0.9})
    with pytest.raises(TypeError):
        as_skew(0.9)


def test_simulate_contention_validates_shape():
    with pytest.raises(ValueError):
        simulate_contention(scale=SCALE, n_clients=0)
    with pytest.raises(ValueError):
        simulate_contention(scale=SCALE, txns_per_client=0)
    with pytest.raises(ValueError, match="cc_mode"):
        simulate_contention(scale=SCALE, cc_mode="occ")


def test_tpcc_database_validates_eagerly():
    with pytest.raises(ValueError, match="cc_mode"):
        TpccDatabase(scale=SCALE, cc_mode="timestamp")
    with pytest.raises(TypeError):
        TpccDatabase(scale=SCALE, skew=0.9)
    with pytest.raises(ValueError):
        TpccDatabase(scale=SCALE, skew=SkewSpec(theta=-1))


def test_workload_for_rejects_dss_contention():
    with pytest.raises(ValueError, match="oltp"):
        workload_for("dss", "saturated", SCALE, skew=SkewSpec(theta=0.9))
    with pytest.raises(ValueError, match="oltp"):
        workload_for("dss", "saturated", SCALE, cc_mode="partitioned")
    with pytest.raises(ValueError, match="cc_mode"):
        workload_for("oltp", "saturated", SCALE, cc_mode="eventual")


def test_run_spec_validates_eagerly():
    config = fc_cmp(scale=SCALE)
    with pytest.raises(ValueError, match="cc_mode"):
        RunSpec(config, "oltp", cc_mode="quorum")
    with pytest.raises(ValueError):
        RunSpec(config, "dss", skew=SkewSpec(theta=0.9))
    with pytest.raises(ValueError):
        RunSpec(config, "oltp", skew=SkewSpec(hot_warehouses=0))


def test_run_spec_key_gating():
    """Default specs keep the pre-contention cache key shape; contended
    specs extend it — old cache entries stay valid, new ones are
    distinct per (skew, cc_mode)."""
    config = fc_cmp(scale=SCALE)
    default_key = RunSpec(config, "oltp").key(SCALE, 1000)
    inert_key = RunSpec(config, "oltp", skew=SkewSpec(),
                        cc_mode="2pl").key(SCALE, 1000)
    assert inert_key == default_key
    skewed = RunSpec(config, "oltp", skew=SkewSpec(theta=0.9))
    partitioned = RunSpec(config, "oltp", cc_mode="partitioned")
    assert skewed.key(SCALE, 1000) != default_key
    assert partitioned.key(SCALE, 1000) != default_key
    assert skewed.key(SCALE, 1000) != partitioned.key(SCALE, 1000)
    assert len(default_key) + 1 == len(skewed.key(SCALE, 1000))


def test_skew_describe_round_trip():
    assert SkewSpec().describe() == "uniform"
    assert SkewSpec(theta=0.9).describe() == "z0.9"
    assert SkewSpec(theta=0.9, hot_warehouses=2,
                    cross_rate=0.3).describe() == "z0.9-h2-x0.3"
