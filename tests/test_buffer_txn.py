"""Unit tests for the buffer pool and the transaction layer."""

import pytest

from repro.db.buffer import BufferPool
from repro.db.heap import HeapFile
from repro.db.schema import Schema
from repro.db.txn import (
    LockConflict,
    LockMode,
    LogManager,
    TransactionManager,
)
from repro.db.types import int64
from repro.simulator.addresses import AddressSpace


def make_heap(space, name="t", rows=100):
    h = HeapFile(space, Schema(name, [int64("id")]), name)
    for i in range(rows):
        h.append((i,))
    return h


class TestBufferPool:
    def test_fetch_returns_page_base(self):
        space = AddressSpace()
        heap = make_heap(space)
        pool = BufferPool(space)
        assert pool.fetch(heap, 0) == heap.page_base(0)

    def test_directory_hit_on_refetch(self):
        space = AddressSpace()
        heap = make_heap(space)
        pool = BufferPool(space)
        pool.fetch(heap, 0)
        pool.fetch(heap, 0)
        assert pool.stats.directory_hits == 1
        assert pool.stats.installs == 1

    def test_capacity_enforced_by_clock(self):
        space = AddressSpace()
        heap = make_heap(space, rows=100 * 1000)
        pool = BufferPool(space, capacity_pages=4)
        for p in range(10):
            pool.fetch(heap, p)
        assert pool.n_resident <= 4
        assert pool.stats.evictions >= 6

    def test_pinned_pages_survive_eviction(self):
        space = AddressSpace()
        heap = make_heap(space, rows=100 * 1000)
        pool = BufferPool(space, capacity_pages=4)
        pool.fetch(heap, 0)
        pool.pin(heap, 0)
        for p in range(1, 20):
            pool.fetch(heap, p)
        assert pool.is_resident(heap, 0)
        pool.unpin(heap, 0)

    def test_all_pinned_raises(self):
        space = AddressSpace()
        heap = make_heap(space, rows=100 * 1000)
        pool = BufferPool(space, capacity_pages=2)
        for p in range(2):
            pool.fetch(heap, p)
            pool.pin(heap, p)
        with pytest.raises(RuntimeError):
            pool.fetch(heap, 5)

    def test_unpin_without_pin_raises(self):
        space = AddressSpace()
        heap = make_heap(space)
        pool = BufferPool(space)
        pool.fetch(heap, 0)
        with pytest.raises(ValueError):
            pool.unpin(heap, 0)

    def test_pin_nonresident_raises(self):
        space = AddressSpace()
        heap = make_heap(space)
        pool = BufferPool(space)
        with pytest.raises(KeyError):
            pool.pin(heap, 0)

    def test_second_chance_prefers_unreferenced(self):
        space = AddressSpace()
        heap = make_heap(space, rows=100 * 1000)
        pool = BufferPool(space, capacity_pages=3)
        for p in range(3):
            pool.fetch(heap, p)
        pool.fetch(heap, 7)  # first eviction clears every ref bit
        pool.fetch(heap, 1)  # re-reference page 1
        pool.fetch(heap, 8)  # second eviction: must skip page 1
        assert pool.is_resident(heap, 1)
        assert not pool.is_resident(heap, 2)


class TestLockManager:
    def test_shared_locks_compatible(self):
        tm = TransactionManager(AddressSpace())
        tm.locks.acquire(1, "r", LockMode.SHARED)
        tm.locks.acquire(2, "r", LockMode.SHARED)
        assert tm.locks.holders("r") == {1, 2}

    def test_exclusive_conflicts_with_shared(self):
        tm = TransactionManager(AddressSpace())
        tm.locks.acquire(1, "r", LockMode.SHARED)
        with pytest.raises(LockConflict):
            tm.locks.acquire(2, "r", LockMode.EXCLUSIVE)

    def test_shared_conflicts_with_exclusive(self):
        tm = TransactionManager(AddressSpace())
        tm.locks.acquire(1, "r", LockMode.EXCLUSIVE)
        with pytest.raises(LockConflict):
            tm.locks.acquire(2, "r", LockMode.SHARED)

    def test_reacquire_is_noop(self):
        tm = TransactionManager(AddressSpace())
        tm.locks.acquire(1, "r", LockMode.SHARED)
        tm.locks.acquire(1, "r", LockMode.SHARED)
        assert tm.locks.locks_held(1) == 1

    def test_upgrade_sole_holder(self):
        tm = TransactionManager(AddressSpace())
        tm.locks.acquire(1, "r", LockMode.SHARED)
        tm.locks.acquire(1, "r", LockMode.EXCLUSIVE)
        with pytest.raises(LockConflict):
            tm.locks.acquire(2, "r", LockMode.SHARED)

    def test_upgrade_blocked_by_cohoders(self):
        tm = TransactionManager(AddressSpace())
        tm.locks.acquire(1, "r", LockMode.SHARED)
        tm.locks.acquire(2, "r", LockMode.SHARED)
        with pytest.raises(LockConflict):
            tm.locks.acquire(1, "r", LockMode.EXCLUSIVE)

    def test_release_all_frees_resources(self):
        tm = TransactionManager(AddressSpace())
        tm.locks.acquire(1, "a", LockMode.EXCLUSIVE)
        tm.locks.acquire(1, "b", LockMode.SHARED)
        assert tm.locks.release_all(1) == 2
        tm.locks.acquire(2, "a", LockMode.EXCLUSIVE)  # now free


class TestTransactions:
    def test_commit_releases_locks(self):
        tm = TransactionManager(AddressSpace())
        txn = tm.begin()
        txn.lock("r", LockMode.EXCLUSIVE)
        tm.commit(txn)
        assert txn.state == "committed"
        assert tm.locks.holders("r") == set()
        assert tm.committed == 1

    def test_abort_releases_locks(self):
        tm = TransactionManager(AddressSpace())
        txn = tm.begin()
        txn.lock("r", LockMode.EXCLUSIVE)
        tm.abort(txn)
        assert txn.state == "aborted"
        assert tm.locks.holders("r") == set()

    def test_use_after_commit_rejected(self):
        tm = TransactionManager(AddressSpace())
        txn = tm.begin()
        tm.commit(txn)
        with pytest.raises(RuntimeError):
            txn.lock("r", LockMode.SHARED)
        with pytest.raises(RuntimeError):
            tm.commit(txn)

    def test_txn_ids_unique(self):
        tm = TransactionManager(AddressSpace())
        ids = {tm.begin().txn_id for _ in range(10)}
        assert len(ids) == 10


class TestLog:
    def test_lsn_monotonic(self):
        log = LogManager(AddressSpace())
        lsns = [log.append(100) for _ in range(5)]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == 5

    def test_stats(self):
        log = LogManager(AddressSpace())
        log.append(64)
        log.append(100)
        assert log.records == 2
        assert log.bytes_written == 164

    def test_rejects_empty_record(self):
        log = LogManager(AddressSpace())
        with pytest.raises(ValueError):
            log.append(0)

    def test_commit_writes_log(self):
        tm = TransactionManager(AddressSpace())
        txn = tm.begin()
        tm.commit(txn)
        assert tm.log.records == 1
