"""Tests for the command-line figure runner."""

import pytest

from repro.cli import FIGURES, main


class TestCli:
    def test_list_target(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_default_is_list(self, capsys):
        assert main([]) == 0
        assert "available targets" in capsys.readouterr().out

    def test_unknown_target_fails(self, capsys):
        assert main(["figured"]) == 2
        assert "unknown targets" in capsys.readouterr().err

    def test_profile_usage_error(self, capsys):
        assert main(["profile"]) == 2
        assert main(["profile", "olap"]) == 2

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Out-of-order" in out and "In-order" in out

    def test_fig1_runs(self, capsys):
        assert main(["fig1"]) == 0
        assert "Cacti model" in capsys.readouterr().out

    def test_scale_flag_accepted(self, capsys):
        assert main(["--scale", "0.05", "table1"]) == 0
        assert "scale 0.05" in capsys.readouterr().out

    @pytest.mark.slow
    def test_profile_oltp(self, capsys):
        assert main(["--scale", "0.05", "profile", "oltp"]) == 0
        out = capsys.readouterr().out
        assert "union data footprint" in out
        assert "storage.btree" in out
