"""Tests for the command-line figure runner."""

import os

import pytest

from repro.cli import FIGURES, main

#: Environment knobs the resilience flags write through.
RESILIENCE_VARS = ("REPRO_TIMEOUT", "REPRO_RETRIES", "REPRO_CHECKPOINT",
                   "REPRO_FAIL_FAST")


class TestCli:
    def test_list_target(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_default_is_list(self, capsys):
        assert main([]) == 0
        assert "available targets" in capsys.readouterr().out

    def test_unknown_target_fails(self, capsys):
        assert main(["figured"]) == 2
        assert "unknown targets" in capsys.readouterr().err

    def test_profile_usage_error(self, capsys):
        assert main(["profile"]) == 2
        assert main(["profile", "olap"]) == 2

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Out-of-order" in out and "In-order" in out

    def test_fig1_runs(self, capsys):
        assert main(["fig1"]) == 0
        assert "Cacti model" in capsys.readouterr().out

    def test_scale_flag_accepted(self, capsys):
        assert main(["--scale", "0.05", "table1"]) == 0
        assert "scale 0.05" in capsys.readouterr().out

    @pytest.mark.slow
    def test_profile_oltp(self, capsys):
        assert main(["--scale", "0.05", "profile", "oltp"]) == 0
        out = capsys.readouterr().out
        assert "union data footprint" in out
        assert "storage.btree" in out

    def test_resilience_flags_reach_the_environment(self, monkeypatch,
                                                    tmp_path, capsys):
        for var in RESILIENCE_VARS:
            monkeypatch.setenv(var, "")  # registers restore-on-teardown
        ckpt = str(tmp_path / "sweep.ckpt")
        assert main(["--timeout", "600", "--retries", "3", "--fail-fast",
                     "--resume", ckpt, "table1"]) == 0
        assert float(os.environ["REPRO_TIMEOUT"]) == 600.0
        assert os.environ["REPRO_RETRIES"] == "3"
        assert os.environ["REPRO_CHECKPOINT"] == ckpt
        assert os.environ["REPRO_FAIL_FAST"] == "1"

    def test_nonpositive_timeout_rejected(self, capsys):
        assert main(["--timeout", "0", "table1"]) == 2
        assert "--timeout" in capsys.readouterr().err

    def test_negative_retries_rejected(self, capsys):
        assert main(["--retries", "-1", "table1"]) == 2
        assert "--retries" in capsys.readouterr().err

    def test_cache_stats_surfaced(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        assert main(["--cache-dir", str(tmp_path / "cache"), "table1"]) == 0
        out = capsys.readouterr().out
        assert "cache: hits=0 misses=0 stores=0 errors=0" in out

    def test_no_cache_stats_without_a_cache(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        assert main(["table1"]) == 0
        assert "cache:" not in capsys.readouterr().out
