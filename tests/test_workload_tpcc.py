"""Tests for the TPC-C-like workload: transaction semantics and traces."""

import random

import pytest

from repro.simulator.trace import FLAG_DEPENDENT, FLAG_WRITE
from repro.workloads.tpcc import TpccConfig, TpccDatabase, _nurand

SCALE = 0.05


@pytest.fixture(scope="module")
def tpcc():
    return TpccDatabase(scale=SCALE, seed=9)


class TestConfig:
    def test_dimensions_scale(self):
        small = TpccConfig.from_scale(0.1)
        large = TpccConfig.from_scale(1.0)
        assert large.warehouses > small.warehouses
        assert large.items > small.items
        assert large.n_stock == large.warehouses * large.items

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            TpccConfig.from_scale(0)

    def test_floor_dimensions(self):
        tiny = TpccConfig.from_scale(0.001)
        assert tiny.warehouses >= 2
        assert tiny.items >= 1000


class TestNurand:
    def test_in_range(self):
        rng = random.Random(1)
        for _ in range(500):
            v = _nurand(rng, 1023, 0, 2999)
            assert 0 <= v <= 2999

    def test_skewed(self):
        """NURand concentrates mass relative to uniform."""
        from collections import Counter
        rng = random.Random(2)
        counts = Counter(_nurand(rng, 255, 0, 9999) for _ in range(20_000))
        top_share = sum(c for _, c in counts.most_common(500)) / 20_000
        assert top_share > 0.2  # uniform would give ~0.05


class TestSchemaPopulation:
    def test_tables_present(self, tpcc):
        names = tpcc.db.catalog.table_names
        for t in ("warehouse", "district", "customer", "stock", "item",
                  "orders", "order_line", "new_order", "history"):
            assert t in names

    def test_virtual_tables_sized(self, tpcc):
        assert tpcc.stock.n_rows == tpcc.cfg.n_stock
        assert tpcc.customer.n_rows == tpcc.cfg.n_customers
        assert tpcc.stock.is_virtual and tpcc.customer.is_virtual

    def test_stock_rows_consistent_with_key(self, tpcc):
        key = tpcc.stock_key(1, 7)
        row = tpcc.stock.get(key)
        assert row[0] == 1 and row[1] == 7

    def test_customer_rows_consistent_with_key(self, tpcc):
        key = tpcc.customer_key(1, 3, 11)
        row = tpcc.customer.get(key)
        assert (row[0], row[1], row[2]) == (1, 3, 11)

    def test_secondary_set_dwarfs_primary(self, tpcc):
        """Stock + customer (the cold stream) dwarf the hot item table.
        (At study scales >= 0.25 the cold set also exceeds 3x the largest
        cache; at this tiny test scale the dimension floors dominate, so
        assert the ratio instead.)"""
        cold = tpcc.stock.footprint_bytes + tpcc.customer.footprint_bytes
        assert cold > 8 * tpcc.item.footprint_bytes

    def test_secondary_set_exceeds_caches_at_study_scale(self):
        cfg = TpccConfig.from_scale(0.25)
        cold_bytes = cfg.n_stock * 72 + cfg.n_customers * 96
        assert cold_bytes > 3 * 26 * 1024 * 1024 * 0.25


class TestTransactions:
    def test_neworder_advances_district_counter(self, tpcc):
        sess = tpcc.db.session("t-no", traced=False)
        rng = random.Random(3)
        d_rows_before = [tpcc.district.get(i)[2]
                         for i in range(tpcc.district.n_rows)]
        tpcc.tx_neworder(sess, rng, home_w=0)
        d_rows_after = [tpcc.district.get(i)[2]
                        for i in range(tpcc.district.n_rows)]
        assert sum(d_rows_after) == sum(d_rows_before) + 1

    def test_neworder_writes_order_and_lines(self, tpcc):
        sess = tpcc.db.session("t-no2", traced=False)
        rng = random.Random(4)
        before_orders = tpcc.orders.n_rows
        before_lines = tpcc.order_line.n_rows
        tpcc.tx_neworder(sess, rng, home_w=1)
        assert tpcc.orders.n_rows == before_orders + 1
        o = tpcc.orders.get(before_orders)
        assert tpcc.order_line.n_rows - before_lines == o[6]  # ol_cnt

    def test_payment_updates_balances(self, tpcc):
        sess = tpcc.db.session("t-pay", traced=False)
        rng = random.Random(5)
        w_before = tpcc.warehouse.get(0)[1]
        h_before = tpcc.history.n_rows
        tpcc.tx_payment(sess, rng, home_w=0)
        assert tpcc.warehouse.get(0)[1] > w_before
        assert tpcc.history.n_rows == h_before + 1

    def test_delivery_drains_new_order_queue(self, tpcc):
        sess = tpcc.db.session("t-del", traced=False)
        rng = random.Random(6)
        for _ in range(3):
            tpcc.tx_neworder(sess, rng, home_w=0)
        def pending(w):
            return sum(1 for (kw, _, _), _ in tpcc.new_order_idx.items()
                       if kw == w)
        before = pending(0)
        assert before >= 3
        tpcc.tx_delivery(sess, rng, home_w=0)
        after = pending(0)
        assert after < before
        tpcc.new_order_idx.check_invariants()

    def test_delivery_takes_oldest_order_first(self, tpcc):
        sess = tpcc.db.session("t-del2", traced=False)
        rng = random.Random(16)
        tpcc.tx_neworder(sess, rng, home_w=1)
        keys = [k for k in (k for k, _ in tpcc.new_order_idx.items())
                if k[0] == 1]
        oldest = min(keys)
        tpcc.tx_delivery(sess, rng, home_w=1)
        remaining = {k for k, _ in tpcc.new_order_idx.items() if k[0] == 1}
        assert oldest not in remaining

    def test_stocklevel_and_orderstatus_read_only(self, tpcc):
        sess = tpcc.db.session("t-ro", traced=False)
        rng = random.Random(7)
        tpcc.tx_neworder(sess, rng, home_w=0)
        orders_before = tpcc.orders.n_rows
        log_before = tpcc.db.txns.log.bytes_written
        tpcc.tx_stocklevel(sess, rng, home_w=0)
        tpcc.tx_orderstatus(sess, rng, home_w=0)
        assert tpcc.orders.n_rows == orders_before
        # Only the commit records hit the log.
        assert tpcc.db.txns.log.bytes_written - log_before == 2 * 32

    def test_every_transaction_commits(self, tpcc):
        committed_before = tpcc.db.txns.committed
        tpcc.run_client(90, 10)
        assert tpcc.db.txns.committed >= committed_before + 10


class TestTraces:
    def test_client_trace_shape(self):
        tpcc = TpccDatabase(scale=SCALE, seed=1)
        tr = tpcc.run_client(0, 15)
        assert len(tr) > 500
        dep = sum(1 for f in tr.flags if f & FLAG_DEPENDENT) / len(tr)
        wr = sum(1 for f in tr.flags if f & FLAG_WRITE) / len(tr)
        assert 0.35 <= dep <= 0.8   # index/lock-heavy pointer chasing
        assert 0.15 <= wr <= 0.6    # update-heavy
        assert len(tr.footprints) >= 8  # many code modules (big I-footprint)

    def test_traces_deterministic(self):
        a = TpccDatabase(scale=SCALE, seed=2).run_client(3, 10)
        b = TpccDatabase(scale=SCALE, seed=2).run_client(3, 10)
        assert list(a.addrs) == list(b.addrs)
        assert list(a.icounts) == list(b.icounts)
        assert list(a.flags) == list(b.flags)

    def test_clients_differ(self):
        tpcc = TpccDatabase(scale=SCALE, seed=2)
        a = tpcc.run_client(1, 10)
        b = tpcc.run_client(2, 10)
        assert list(a.addrs) != list(b.addrs)

    def test_clients_share_hot_lines(self):
        """Different clients of one warehouse touch common hot lines (the
        sharing that drives Figure 7's coherence traffic)."""
        tpcc = TpccDatabase(scale=SCALE, seed=2)
        w = tpcc.cfg.warehouses
        a = tpcc.run_client(10, 12)   # same home warehouse: 10 % w
        b = tpcc.run_client(10 + w, 12)
        lines_a = {addr >> 6 for addr in a.addrs}
        lines_b = {addr >> 6 for addr in b.addrs}
        assert len(lines_a & lines_b) > 50
