"""Tests for the programmatic figure API (repro.core.figures)."""

import pytest

from repro.core import figures
from repro.core.experiment import Experiment

TINY = 0.02


@pytest.fixture(scope="module")
def exp():
    return Experiment(scale=TINY, measure_cycles=40_000)


class TestFastFigures:
    def test_table1_text(self):
        text = figures.table1_text()
        assert "FC" in text and "LC" in text
        assert "3 x LC size" in text

    def test_figure1_sections(self):
        text = figures.figure1()
        assert "Fig 1(a)" in text and "Fig 1(b)" in text
        assert "paper vs measured" in text


@pytest.mark.slow
class TestSimulatedFigures:
    def test_figure4_has_both_panels(self, exp):
        text = figures.figure4(exp)
        assert "LC response time" in text
        assert "LC throughput" in text
        assert "paper vs measured" in text

    def test_figure5_has_eight_bars(self, exp):
        text = figures.figure5(exp)
        for label in ("FC/OLTP/saturated", "LC/DSS/unsaturated"):
            assert label in text
        assert text.count("computation=") == 8

    def test_figure7_reports_both_machines(self, exp):
        text = figures.figure7(exp)
        assert "SMP/OLTP" in text and "CMP/DSS" in text
        assert "coherence" in text

    def test_every_simulated_figure_renders(self, exp):
        for fn in (figures.figure2, figures.figure3, figures.figure6,
                   figures.figure8):
            text = fn(exp)
            assert "paper vs measured" in text
            assert len(text) > 200
