"""Tests for the TPC-H-like workload: query correctness and traces."""

import random

import pytest

from repro.workloads.tpch import QUERIES, TpchDatabase

SCALE = 0.02


@pytest.fixture(scope="module")
def tpch():
    return TpchDatabase(scale=SCALE, seed=13)


def lineitem_rows(tpch, lo, hi):
    return [tpch.lineitem.get(i) for i in range(lo, hi)]


class TestGeneration:
    def test_dimensions(self, tpch):
        assert tpch.n_orders == tpch.n_lineitem // 4
        assert tpch.n_partsupp == tpch.n_parts * 4

    def test_rows_deterministic(self, tpch):
        assert tpch.lineitem.get(123) == tpch.lineitem.get(123)
        other = TpchDatabase(scale=SCALE, seed=13)
        assert other.lineitem.get(123) == tpch.lineitem.get(123)

    def test_row_domains(self, tpch):
        for rid in range(0, 500, 7):
            row = tpch.lineitem.get(rid)
            assert row[0] == rid // 4                 # orderkey
            assert 0 <= row[1] < tpch.n_parts         # partkey
            assert 1 <= row[3] <= 50                  # quantity
            assert 0.0 <= row[5] <= 0.10              # discount
            assert 0 <= row[9] < 2556                 # shipdate

    def test_scale_validated(self):
        with pytest.raises(ValueError):
            TpchDatabase(scale=0)


class TestBlockGenerators:
    """The page-granular ``_*_block`` bulk generators must stay
    row-for-row identical to their per-rid ``_*_row`` sources — the
    fused scan drains build pages with the former, ``get()`` serves
    point lookups with the latter."""

    TABLES = ("lineitem", "orders", "customer", "part", "partsupp")

    @pytest.mark.parametrize("table", TABLES)
    def test_block_matches_per_rid_rows(self, tpch, table):
        n_rows = getattr(tpch, {
            "lineitem": "n_lineitem", "orders": "n_orders",
            "customer": "n_customers", "part": "n_parts",
            "partsupp": "n_partsupp"}[table])
        block = getattr(tpch, f"_{table}_block")
        row = getattr(tpch, f"_{table}_row")
        # Head, an interior page, and the ragged tail.
        spans = [(0, min(128, n_rows)),
                 (n_rows // 2, min(n_rows // 2 + 128, n_rows)),
                 (max(0, n_rows - 37), n_rows)]
        for lo, hi in spans:
            assert block(lo, hi) == [row(rid) for rid in range(lo, hi)]

    def test_heap_pages_serve_block_rows(self, tpch):
        """A page read off the heap equals the per-rid get() view."""
        cap = tpch.lineitem.format.capacity
        got = tpch.lineitem.page_rows(1)
        assert got == lineitem_rows(tpch, cap, 2 * cap)


class TestQueriesMatchNaive:
    def test_q1_matches_naive(self, tpch):
        sess = tpch.db.session("q1", traced=False)
        rng = random.Random(1)
        out = tpch.q1(sess, rng, 0, 3000)
        # Recompute with the same window/cutoff drawn from an equal rng.
        rng2 = random.Random(1)
        cutoff = 2450 + rng2.randrange(60)
        lo, hi = tpch._window(rng2, 0, 3000, tpch.q1_window_rows)
        rows = [r for r in lineitem_rows(tpch, lo, hi) if r[9] <= cutoff]
        expected_counts = {}
        for r in rows:
            k = (r[7], r[8])
            expected_counts[k] = expected_counts.get(k, 0) + 1
        got = {(r[0], r[1]): r[-1] for r in out}
        assert got == expected_counts

    def test_q6_matches_naive(self, tpch):
        sess = tpch.db.session("q6", traced=False)
        rng = random.Random(2)
        out = tpch.q6(sess, rng, 0, 3000)
        rng2 = random.Random(2)
        year_lo = rng2.randrange(5) * 365
        disc = 0.02 + rng2.randrange(7) / 100.0
        lo, hi = tpch._window(rng2, 0, 3000, tpch.q6_window_rows)
        expect = sum(
            r[4] * r[5] for r in lineitem_rows(tpch, lo, hi)
            if year_lo <= r[9] < year_lo + 365
            and disc - 0.011 <= r[5] <= disc + 0.011 and r[3] < 24
        )
        assert out[0][0] == pytest.approx(expect)

    def test_q13_distribution_sums_to_matched_customers(self, tpch):
        sess = tpch.db.session("q13", traced=False)
        rng = random.Random(3)
        out = tpch.q13(sess, rng, 0, tpch.n_orders)
        rng2 = random.Random(3)
        seg = rng2.randrange(5)
        o_lo, o_hi = tpch._window(rng2, 0, tpch.n_orders,
                                  tpch.join_window_rows)
        matched = set()
        for rid in range(o_lo, o_hi):
            ck = tpch.orders.get(rid)[1]
            if tpch.customer.get(ck)[3] == seg:
                matched.add(ck)
        assert sum(count for _, count in out) == len(matched)

    def test_q16_counts_match_naive(self, tpch):
        sess = tpch.db.session("q16", traced=False)
        rng = random.Random(4)
        out = tpch.q16(sess, rng, 0, tpch.n_partsupp)
        rng2 = random.Random(4)
        brand = rng2.randrange(25)
        size_set = {rng2.randrange(1, 51) for _ in range(8)}
        ps_lo, ps_hi = tpch._window(rng2, 0, tpch.n_partsupp,
                                    tpch.join_window_rows)
        expected = {}
        for rid in range(ps_lo, ps_hi):
            pk = tpch.partsupp.get(rid)[0]
            p = tpch.part.get(pk)
            if p[1] != brand and p[3] in size_set:
                key = (p[1], p[2], p[3])
                expected[key] = expected.get(key, 0) + 1
        got = {(r[0], r[1], r[2]): r[3] for r in out}
        assert got == expected


class TestWindowsAndChunks:
    def test_window_within_bounds(self, tpch):
        rng = random.Random(8)
        for _ in range(100):
            lo, hi = tpch._window(rng, 1000, 5000, 700)
            assert 1000 <= lo < hi <= 5000
            assert hi - lo == 700

    def test_window_clamps_to_span(self, tpch):
        rng = random.Random(8)
        lo, hi = tpch._window(rng, 0, 100, 700)
        assert (lo, hi) == (0, 100)

    def test_window_positions_quantized(self, tpch):
        rng = random.Random(8)
        starts = {tpch._window(rng, 0, 100_000, 1000)[0]
                  for _ in range(200)}
        assert len(starts) <= tpch.WINDOW_POSITIONS

    def test_chunks_partition_table(self, tpch):
        n = tpch.n_lineitem
        covered = []
        for c in range(4):
            lo, hi = tpch.chunk(n, c, 4)
            covered.append((lo, hi))
        assert covered[0][0] == 0
        assert covered[-1][1] == n
        for (a_lo, a_hi), (b_lo, b_hi) in zip(covered, covered[1:]):
            assert a_hi == b_lo

    def test_chunk_ownership_wraps(self, tpch):
        assert tpch.chunk(1000, 5, 4) == tpch.chunk(1000, 1, 4)


class TestTraces:
    def test_rotation_varies_query_order(self):
        tpch = TpchDatabase(scale=SCALE, seed=14)
        t0 = tpch.run_client(0, 4)
        t1 = tpch.run_client(1, 4)
        # Different rotations: first code regions differ between clients.
        assert list(t0.regions[:50]) != list(t1.regions[:50])

    def test_trace_covers_all_queries(self):
        tpch = TpchDatabase(scale=SCALE, seed=14)
        tr = tpch.run_client(2, 4, queries=QUERIES)
        names = {fp.name for fp in tr.footprints}
        assert {"exec.seqscan", "exec.hashjoin", "exec.aggregate"} <= names

    def test_repeats_lengthen_trace(self):
        tpch = TpchDatabase(scale=SCALE, seed=14)
        one = tpch.run_client(3, 4, repeats=1)
        tpch2 = TpchDatabase(scale=SCALE, seed=14)
        two = tpch2.run_client(3, 4, repeats=2)
        assert len(two) > 1.5 * len(one)

    def test_deterministic(self):
        a = TpchDatabase(scale=SCALE, seed=15).run_client(1, 4)
        b = TpchDatabase(scale=SCALE, seed=15).run_client(1, 4)
        assert list(a.addrs) == list(b.addrs)
        assert list(a.icounts) == list(b.icounts)
