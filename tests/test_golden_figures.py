"""Golden regression tests: the paper's headline conclusions, pinned.

Refactors of the execution layer (parallel fan-out, caching, batching)
must not bend the directions the reproduction exists to demonstrate.
These tests pin the *signs* of the headline comparisons at a fixed small
scale — camp winners (Fig. 4), the real-vs-const latency crossover
(Fig. 6), and the SMP/CMP ordering (Fig. 7) — so a silently changed
simulation shows up as a red test, not as a quietly different paper.

Everything here runs at GOLDEN_SCALE with a fixed window; the simulator
is deterministic, so these are exact, not statistical, assertions.
"""

import pytest

from repro.core.experiment import Experiment
from repro.core.sweeps import cache_size_sweep
from repro.simulator import cacti
from repro.simulator.configs import BASELINE_L2_MB, fc_cmp, fc_smp, lc_cmp

GOLDEN_SCALE = 0.02
GOLDEN_CYCLES = 40_000


@pytest.fixture(scope="module")
def exp():
    return Experiment(scale=GOLDEN_SCALE, measure_cycles=GOLDEN_CYCLES,
                      use_cache=False)


@pytest.mark.slow
class TestFigure4CampWinners:
    """Fig. 4: LC wins saturated throughput, FC wins unsaturated response."""

    def test_lc_wins_saturated_throughput(self, exp):
        fc = fc_cmp(l2_nominal_mb=BASELINE_L2_MB, scale=exp.scale)
        lc = lc_cmp(l2_nominal_mb=BASELINE_L2_MB, scale=exp.scale)
        for kind in ("oltp", "dss"):
            assert exp.throughput_ratio(lc, fc, kind) > 1.0, (
                f"LC must out-throughput FC on saturated {kind}"
            )

    def test_fc_wins_unsaturated_response(self, exp):
        fc = fc_cmp(l2_nominal_mb=BASELINE_L2_MB, scale=exp.scale)
        lc = lc_cmp(l2_nominal_mb=BASELINE_L2_MB, scale=exp.scale)
        for kind in ("oltp", "dss"):
            assert exp.response_ratio(lc, fc, kind) > 1.0, (
                f"LC response time must exceed FC on unsaturated {kind}"
            )


@pytest.mark.slow
class TestFigure6LatencyCrossover:
    """Fig. 6: capacity helps at const latency; real latency erodes it."""

    @pytest.mark.parametrize("kind", ["oltp", "dss"])
    def test_real_vs_const_crossover_direction(self, exp, kind):
        real = cache_size_sweep(exp, kind)
        const = cache_size_sweep(exp, kind,
                                 const_latency=cacti.CONST_L2_LATENCY)
        # Growing the L2 at constant latency buys throughput...
        assert const[-1].result.ipc > const[0].result.ipc
        # ...and the realistic (Cacti) latency takes part of it back at
        # the largest size: const must sit above real at 26 MB.
        assert const[-1].result.ipc > real[-1].result.ipc
        # L2-hit data stalls per instruction grow with capacity under
        # real latencies (the paper's central observation).
        first, last = real[0].result, real[-1].result
        assert (last.breakdown.d_onchip / max(1, last.retired)
                > first.breakdown.d_onchip / max(1, first.retired))


@pytest.mark.slow
class TestFigure7SmpCmpOrdering:
    """Fig. 7: the CMP outperforms the equal-aggregate-L2 SMP."""

    @pytest.mark.parametrize("kind", ["oltp", "dss"])
    def test_cmp_cpi_below_smp(self, exp, kind):
        smp = fc_smp(n_nodes=4, private_l2_nominal_mb=4.0, scale=exp.scale)
        cmp_ = fc_cmp(n_cores=4, l2_nominal_mb=16.0, scale=exp.scale)
        r_smp = exp.run(smp, kind)
        r_cmp = exp.run(cmp_, kind)
        assert r_cmp.cpi < r_smp.cpi, (
            f"shared-L2 CMP must beat private-L2 SMP on {kind}"
        )
        # Coherence misses exist on the SMP and are converted on the CMP.
        assert r_cmp.hier_stats.data_level_counts[4] == 0
        if kind == "oltp":
            assert r_smp.hier_stats.coherence_misses > 0
