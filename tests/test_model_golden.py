"""Golden model/explorer acceptance: the ISSUE's quantitative bar,
pinned at the golden scale.

At GOLDEN_SCALE the fitted model must predict held-out golden-figure
configurations within the 15% throughput-MAE bound, and a quick
exploration must reproduce the paper's qualitative frontier: lean wins
saturated throughput, fat wins unsaturated response — at equal area.
The simulator is deterministic, so these are exact assertions.
"""

import pytest

from repro.core.experiment import Experiment
from repro.explore.explorer import explore
from repro.model.calibrate import ERROR_BOUND, cross_validate, fit

GOLDEN_SCALE = 0.02
GOLDEN_CYCLES = 40_000


@pytest.fixture(scope="module")
def exp():
    return Experiment(scale=GOLDEN_SCALE, measure_cycles=GOLDEN_CYCLES,
                      use_cache=False)


@pytest.fixture(scope="module")
def model(exp):
    return fit(exp)


@pytest.mark.slow
class TestModelAccuracy:
    """DESIGN.md §10.2: held-out interpolation within the error bound."""

    def test_holdout_mae_within_bound(self, exp, model):
        report = cross_validate(exp, model)
        # 2 kinds x 2 camps x 3 held-out sizes.
        assert len(report.rows) == 12
        assert report.within_bound, (
            f"holdout MAE {report.mae:.1%} exceeds {ERROR_BOUND:.0%}")

    def test_no_single_config_wildly_off(self, exp, model):
        report = cross_validate(exp, model)
        assert report.max_abs_error <= 2 * ERROR_BOUND, (
            f"worst holdout error {report.max_abs_error:.1%}")


@pytest.mark.slow
class TestExploreGolden:
    """The prune-then-confirm loop reproduces the paper's frontier."""

    @pytest.fixture(scope="class")
    def report(self, exp, model):
        return explore(exp, quick=True, model=model, validate=False)

    def test_paper_claims_confirmed_at_equal_area(self, report):
        assert report.checks == {
            "oltp: lean wins saturated throughput": True,
            "oltp: fat wins unsaturated response": True,
            "dss: lean wins saturated throughput": True,
            "dss: fat wins unsaturated response": True,
        }
        assert report.all_checks_pass

    def test_screening_error_on_confirmed_frontier(self, report):
        assert report.confirmed
        assert report.screening_mae <= ERROR_BOUND, (
            f"screening MAE {report.screening_mae:.1%}")

    def test_space_breadth_and_speed(self, report):
        assert report.n_candidates >= 100
        assert report.screen_seconds < 5.0
