"""The persistent result cache: accounting, corruption, salting, keys.

The cache must be strictly an accelerator: a damaged or stale cache may
only cost re-simulation, never change results or crash, and a warm cache
must satisfy repeated runs with zero ``Machine.run`` calls.  That holds
under concurrency (two processes racing on one key) and under the fault
injector's cache-corruption site (``REPRO_FAULTS=corrupt@i``).
"""

import os
import pickle
import subprocess
import sys
import textwrap

import pytest

from repro.core import parallel
from repro.core.experiment import Experiment, _config_key
from repro.core.parallel import ResultCache, RunSpec, config_key, execute
from repro.simulator.configs import fc_cmp

SCALE = 0.02
CYCLES = 40_000


def _config(l2_mb: float = 1.0, scale: float = SCALE):
    return fc_cmp(n_cores=4, l2_nominal_mb=l2_mb, scale=scale)


def _experiment(cache_dir, **kwargs) -> Experiment:
    return Experiment(scale=SCALE, measure_cycles=CYCLES,
                      cache_dir=str(cache_dir), **kwargs)


def _cache_files(root) -> list:
    return [os.path.join(dirpath, name)
            for dirpath, _, names in os.walk(root)
            for name in names if name.endswith(".pkl")]


@pytest.mark.slow
class TestCacheAccounting:
    def test_miss_store_then_hit(self, tmp_path):
        e1 = _experiment(tmp_path)
        first = e1.run(_config(), "dss")
        assert e1.sim_runs == 1
        assert e1.cache.misses == 1
        assert e1.cache.stores == 1
        # Same process: memo hit, the disk cache is not consulted again.
        assert e1.run(_config(), "dss") == first
        assert e1.cache.hits == 0

        # Fresh process (simulated by a fresh Experiment): disk hit.
        e2 = _experiment(tmp_path)
        assert e2.run(_config(), "dss") == first
        assert e2.sim_runs == 0
        assert e2.cache.hits == 1
        assert e2.cache.misses == 0

    def test_warm_cache_performs_zero_machine_runs(self, tmp_path,
                                                   monkeypatch):
        specs = [RunSpec(_config(mb), "dss") for mb in (1.0, 4.0)]
        e1 = _experiment(tmp_path)
        first = e1.run_many(specs, jobs=1)
        assert e1.sim_runs == len(specs)

        # With the cache warm, simulation must be unreachable: replace the
        # Machine class on the only simulation path with a tripwire.
        class Tripwire:
            def __init__(self, *a, **k):
                raise AssertionError("Machine.run called on a warm cache")

        monkeypatch.setattr(parallel, "Machine", Tripwire)
        e2 = _experiment(tmp_path)
        second = e2.run_many(specs, jobs=1)
        assert e2.sim_runs == 0
        assert e2.cache.hits == len(specs)
        assert second == first

    def test_use_cache_false_disables_disk(self, tmp_path):
        exp = _experiment(tmp_path, use_cache=False)
        assert exp.cache is None
        exp.run(_config(), "dss")
        assert _cache_files(tmp_path) == []


@pytest.mark.slow
class TestCacheRobustness:
    def test_corrupt_entry_falls_back_to_simulation(self, tmp_path):
        e1 = _experiment(tmp_path)
        first = e1.run(_config(), "dss")
        (path,) = _cache_files(tmp_path)
        with open(path, "wb") as fh:
            fh.write(b"this is not a pickle")

        e2 = _experiment(tmp_path)
        recovered = e2.run(_config(), "dss")
        assert recovered == first
        assert e2.sim_runs == 1
        assert e2.cache.errors == 1
        assert e2.cache.misses == 1
        # The refill repaired the entry for the next reader.
        e3 = _experiment(tmp_path)
        assert e3.run(_config(), "dss") == first
        assert e3.sim_runs == 0

    def test_wrong_payload_type_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = ("k",)
        path = cache.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        import pickle
        with open(path, "wb") as fh:
            pickle.dump({"not": "a MachineResult"}, fh)
        assert cache.get(key) is None
        assert cache.errors == 1

    def test_salt_change_invalidates_stale_entries(self, tmp_path):
        e1 = _experiment(tmp_path)
        first = e1.run(_config(), "dss")
        # A simulator change bumps the code-version salt: old entries are
        # no longer addressable, so the point re-simulates and both
        # versions coexist on disk.
        e2 = Experiment(scale=SCALE, measure_cycles=CYCLES,
                        cache=ResultCache(str(tmp_path), salt="sim-v2"))
        second = e2.run(_config(), "dss")
        assert e2.sim_runs == 1
        assert e2.cache.misses == 1
        assert second == first  # same code, so same result — but re-proved
        assert len(_cache_files(tmp_path)) == 2

    def test_unwritable_cache_root_is_best_effort(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where the cache dir should go")
        exp = Experiment(scale=SCALE, measure_cycles=CYCLES,
                         cache=ResultCache(str(blocked / "sub")))
        result = exp.run(_config(), "dss")  # must not raise
        assert result.ipc > 0
        assert exp.cache.errors >= 1


class TestConfigKey:
    def test_equal_configs_produce_equal_keys(self):
        assert config_key(_config()) == config_key(_config())
        assert _config_key(_config()) == config_key(_config())

    def test_unequal_scales_produce_distinct_keys(self):
        assert (config_key(_config(scale=0.02))
                != config_key(_config(scale=0.04)))

    def test_distinct_hierarchies_produce_distinct_keys(self):
        assert config_key(_config(1.0)) != config_key(_config(4.0))

    def test_container_fields_normalize_to_hashable(self):
        a, b = _config(), _config()
        # HierarchyParams is mutable: an experiment could stash a list in
        # a field.  The key must stay hashable and list/tuple-insensitive.
        a.hierarchy.l2_banks = [4, 2]
        b.hierarchy.l2_banks = (4, 2)
        key = config_key(a)
        hash(key)
        assert key == config_key(b)

    def test_unhashable_field_raises_clear_error(self):
        config = _config()
        config.hierarchy.l2_banks = bytearray(b"oops")
        with pytest.raises(TypeError, match="unhashable field"):
            config_key(config)

    def test_key_is_usable_as_dict_key(self):
        d = {config_key(_config()): 1}
        assert d[config_key(_config())] == 1


class TestPutRobustness:
    def test_stats_summary(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.stats() == {"hits": 0, "misses": 0, "stores": 0,
                                 "errors": 0, "evictions": 0}
        assert cache.get(("nothing",)) is None
        assert cache.stats()["misses"] == 1

    def test_unpicklable_payload_counts_error_never_raises(self, tmp_path):
        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("deliberately unpicklable")

        cache = ResultCache(str(tmp_path))
        cache.put(("k",), Unpicklable())  # must not propagate
        assert cache.errors == 1
        assert cache.stores == 0
        assert _cache_files(tmp_path) == []

    def test_no_temp_droppings_after_failed_store(self, tmp_path):
        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("nope")

        cache = ResultCache(str(tmp_path))
        cache.put(("k",), Unpicklable())
        leftovers = [name for _, _, names in os.walk(tmp_path)
                     for name in names]
        assert leftovers == []


@pytest.mark.slow
class TestConcurrentWriters:
    def test_two_processes_storing_the_same_key(self, tmp_path):
        """Two cache writers racing on one key must both succeed without
        errors, and the surviving entry must be readable (each store is
        an atomic rename of a private temp file)."""
        result = execute(RunSpec(_config(), "dss"), SCALE, CYCLES)
        blob = tmp_path / "result.pkl"
        blob.write_bytes(pickle.dumps(result))
        root = tmp_path / "cache"
        script = textwrap.dedent(f"""
            import pickle
            from repro.core.parallel import ResultCache
            with open({str(blob)!r}, "rb") as fh:
                result = pickle.load(fh)
            cache = ResultCache({str(root)!r})
            for _ in range(40):
                cache.put(("concurrent", "writers"), result)
            print(cache.errors, cache.stores)
        """)
        src_dir = os.path.join(
            os.path.dirname(os.path.dirname(__file__)), "src")
        env = {k: v for k, v in os.environ.items() if k != "REPRO_FAULTS"}
        env["PYTHONPATH"] = os.pathsep.join(
            [src_dir] + [p for p in (env.get("PYTHONPATH"),) if p])
        procs = [
            subprocess.Popen([sys.executable, "-c", script], env=env,
                             stdout=subprocess.PIPE, text=True)
            for _ in range(2)
        ]
        outs = [p.communicate()[0].split() for p in procs]
        assert all(p.returncode == 0 for p in procs)
        assert [out for out in outs] == [["0", "40"], ["0", "40"]]
        reader = ResultCache(str(root))
        assert reader.get(("concurrent", "writers")) == result
        droppings = [name for _, _, names in os.walk(root)
                     for name in names if name.endswith(".tmp")]
        assert droppings == []


@pytest.mark.slow
class TestCorruptionUnderInjector:
    def test_injected_corruption_recovers_by_resimulating(
            self, tmp_path, monkeypatch):
        """``corrupt@i`` writes garbage for batch index i; the next
        reader treats it as a corrupt entry, re-simulates bit-for-bit,
        and repairs the cache."""
        specs = [RunSpec(_config(mb), "dss") for mb in (1.0, 4.0)]
        monkeypatch.setenv("REPRO_FAULTS", "corrupt@1")
        e1 = _experiment(tmp_path)
        first = e1.run_many(specs, jobs=1)
        assert e1.cache.stores == 2  # both written, one as garbage

        monkeypatch.delenv("REPRO_FAULTS")
        e2 = _experiment(tmp_path)
        second = e2.run_many(specs, jobs=1)
        assert second == first
        assert e2.cache.errors == 1
        assert e2.cache.hits == 1
        assert e2.sim_runs == 1  # only the corrupted entry re-simulated

        # The refill repaired the entry: a third reader is all hits.
        e3 = _experiment(tmp_path)
        assert e3.run_many(specs, jobs=1) == first
        assert e3.sim_runs == 0


class TestBudgetParsing:
    """``REPRO_CACHE_BUDGET`` → bytes; a bad knob never empties a cache."""

    @pytest.mark.parametrize("raw,expected", [
        ("4096", 4096),
        ("64k", 64 * 1024),
        ("2m", 2 * 1024 ** 2),
        ("1g", 1024 ** 3),
        ("1.5k", 1536),
        (" 8K ", 8 * 1024),
        ("junk", None),
        ("0", None),
        ("-5", None),
        ("", None),
    ])
    def test_parse(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_CACHE_BUDGET", raw)
        assert parallel.default_cache_budget() == expected

    def test_unset_means_unlimited(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_BUDGET", raising=False)
        assert parallel.default_cache_budget() is None

    def test_cache_reads_env_by_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BUDGET", "2k")
        assert ResultCache(str(tmp_path)).budget_bytes == 2048
        monkeypatch.delenv("REPRO_CACHE_BUDGET")
        assert ResultCache(str(tmp_path)).budget_bytes is None
        # An explicit argument beats the environment.
        assert ResultCache(str(tmp_path),
                           budget_bytes=512).budget_bytes == 512


@pytest.mark.slow
class TestLRUEviction:
    """The size-budgeted cache is an LRU over entry mtimes."""

    @pytest.fixture(scope="class")
    def result(self):
        return execute(RunSpec(_config(), "dss"), SCALE, CYCLES)

    def _key(self, i: int) -> tuple:
        return ("budget-test", i)

    def _fill(self, cache, result, n: int) -> list:
        """Store n entries under distinct keys with ascending mtimes."""
        paths = []
        for i in range(n):
            cache.put(self._key(i), result)
            path = cache.path_for(self._key(i))
            os.utime(path, (1000.0 * (i + 1), 1000.0 * (i + 1)))
            paths.append(path)
        return paths

    def _entry_size(self, tmp_path, result) -> int:
        probe = ResultCache(str(tmp_path / "probe"))
        probe.put(("probe",), result)
        return probe.disk_bytes()

    def test_store_evicts_oldest_until_within_budget(self, tmp_path,
                                                     result):
        size = self._entry_size(tmp_path, result)
        cache = ResultCache(str(tmp_path / "c"),
                            budget_bytes=int(size * 2.5))
        self._fill(cache, result, 2)
        assert cache.evictions == 0
        cache.put(self._key(2), result)  # 3 entries > budget: evict oldest
        assert cache.evictions == 1
        assert cache.disk_bytes() <= cache.budget_bytes
        assert cache.get(self._key(0)) is None          # oldest: gone
        assert cache.get(self._key(1)) is not None
        assert cache.get(self._key(2)) is not None
        assert cache.stats()["evictions"] == 1

    def test_hit_refreshes_recency(self, tmp_path, result):
        size = self._entry_size(tmp_path, result)
        cache = ResultCache(str(tmp_path / "c"),
                            budget_bytes=int(size * 2.5))
        self._fill(cache, result, 2)
        # Touch entry 0: its mtime refreshes to now, making entry 1 the
        # LRU victim when the next store breaches the budget.
        assert cache.get(self._key(0)) is not None
        cache.put(self._key(2), result)
        assert cache.get(self._key(0)) is not None
        assert cache.get(self._key(1)) is None
        assert cache.get(self._key(2)) is not None

    def test_a_store_never_evicts_its_own_payload(self, tmp_path, result):
        size = self._entry_size(tmp_path, result)
        cache = ResultCache(str(tmp_path / "c"),
                            budget_bytes=max(1, size // 2))
        cache.put(self._key(0), result)
        assert cache.get(self._key(0)) is not None  # kept despite budget
        cache.put(self._key(1), result)
        # The older entry paid for the new one.
        assert cache.get(self._key(0)) is None
        assert cache.get(self._key(1)) is not None

    def test_eviction_is_safe_against_concurrent_readers(self, tmp_path,
                                                         result):
        size = self._entry_size(tmp_path, result)
        cache = ResultCache(str(tmp_path / "c"),
                            budget_bytes=int(size * 1.5))
        self._fill(cache, result, 1)
        victim = cache.path_for(self._key(0))
        with open(victim, "rb") as fh:
            cache.put(self._key(1), result)  # evicts the open victim
            assert cache.evictions == 1
            # POSIX: the already-open handle still reads the full entry.
            recovered = pickle.load(fh)
            assert recovered == result
        # A late reader takes a clean miss, never an error.
        assert cache.get(self._key(0)) is None
        assert cache.errors == 0

    def test_no_budget_means_no_eviction(self, tmp_path, result,
                                         monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_BUDGET", raising=False)
        cache = ResultCache(str(tmp_path / "c"))
        self._fill(cache, result, 4)
        assert cache.evictions == 0
        assert len(_cache_files(tmp_path / "c")) == 4

    def test_experiment_surfaces_eviction_stats(self, tmp_path, result,
                                                monkeypatch):
        size = self._entry_size(tmp_path, result)
        monkeypatch.setenv("REPRO_CACHE_BUDGET", str(int(size * 1.5)))
        exp = _experiment(tmp_path / "c")
        exp.cache.put(self._key(0), result)
        exp.cache.put(self._key(1), result)
        assert exp.cache_stats()["evictions"] == 1
