"""Integration tests: workloads through machines via the experiment layer.

These run at a tiny scale so the whole file stays fast, and they check the
*relationships* the characterization depends on rather than point values.
"""

import pytest

from repro.core.experiment import Experiment
from repro.core.sweeps import (
    cache_size_sweep,
    client_count_sweep,
    core_count_sweep,
)
from repro.simulator.configs import fc_cmp, fc_smp, lc_cmp
from repro.workloads.driver import workload_for

SCALE = 0.05
WINDOW = 80_000


@pytest.fixture(scope="module")
def exp():
    return Experiment(scale=SCALE, measure_cycles=WINDOW)


class TestExperimentRunner:
    def test_results_memoized(self, exp):
        cfg = fc_cmp(l2_nominal_mb=4, scale=SCALE)
        a = exp.run(cfg, "oltp")
        b = exp.run(fc_cmp(l2_nominal_mb=4, scale=SCALE), "oltp")
        assert a is b  # identical config -> cached result object

    def test_distinct_configs_not_conflated(self, exp):
        a = exp.run(fc_cmp(l2_nominal_mb=4, scale=SCALE), "oltp")
        b = exp.run(fc_cmp(l2_nominal_mb=8, scale=SCALE), "oltp")
        assert a is not b

    def test_workload_dispatch_validates(self):
        with pytest.raises(ValueError):
            workload_for("olap", "saturated", SCALE)
        with pytest.raises(ValueError):
            workload_for("oltp", "sideways", SCALE)

    def test_unsaturated_runs_response_mode(self, exp):
        cfg = fc_cmp(l2_nominal_mb=4, scale=SCALE)
        r = exp.run(cfg, "dss", "unsaturated")
        assert r.response_cycles is not None


class TestCharacterizationRelations:
    def test_lean_wins_saturated_fat_wins_single_thread(self, exp):
        fc = fc_cmp(l2_nominal_mb=8, scale=SCALE)
        lc = lc_cmp(l2_nominal_mb=8, scale=SCALE)
        for kind in ("oltp", "dss"):
            assert exp.throughput_ratio(lc, fc, kind) > 1.0
            assert exp.response_ratio(lc, fc, kind) > 1.0

    def test_lean_saturated_hides_stalls_best(self, exp):
        """The LC x saturated cell has the highest computation share of
        the four camp x regime combinations (paper Section 4)."""
        fc = fc_cmp(l2_nominal_mb=8, scale=SCALE)
        lc = lc_cmp(l2_nominal_mb=8, scale=SCALE)
        comp = {}
        for cfg, camp in ((fc, "fc"), (lc, "lc")):
            for regime in ("saturated", "unsaturated"):
                r = exp.run(cfg, "oltp", regime)
                comp[(camp, regime)] = r.breakdown.fraction(
                    r.breakdown.computation)
        best = max(comp, key=comp.get)
        assert best == ("lc", "saturated")

    def test_bigger_cache_fewer_offchip_accesses(self, exp):
        small = exp.run(fc_cmp(l2_nominal_mb=1, scale=SCALE), "oltp")
        big = exp.run(fc_cmp(l2_nominal_mb=16, scale=SCALE), "oltp")
        small_mem = small.hier_stats.data_fraction(3)
        big_mem = big.hier_stats.data_fraction(3)
        assert big_mem < small_mem

    def test_const_latency_dominates_real(self, exp):
        real = exp.run(fc_cmp(l2_nominal_mb=26, scale=SCALE), "oltp")
        const = exp.run(
            fc_cmp(l2_nominal_mb=26, scale=SCALE, const_latency=4), "oltp")
        assert const.ipc > real.ipc

    def test_smp_pays_coherence_cmp_does_not(self, exp):
        smp = exp.run(fc_smp(n_nodes=4, private_l2_nominal_mb=4,
                             scale=SCALE), "oltp")
        cmp_ = exp.run(fc_cmp(n_cores=4, l2_nominal_mb=16, scale=SCALE),
                       "oltp")
        assert smp.hier_stats.coherence_misses > 0
        assert cmp_.hier_stats.coherence_misses == 0
        assert cmp_.cpi < smp.cpi


class TestSweeps:
    def test_cache_size_sweep_shape(self, exp):
        points = cache_size_sweep(exp, "oltp", sizes_mb=(1.0, 8.0))
        assert [p.x for p in points] == [1.0, 8.0]
        assert points[1].result.ipc > points[0].result.ipc

    def test_core_count_sweep_grows(self, exp):
        points = core_count_sweep(exp, "dss", core_counts=(2, 8))
        assert points[1].result.ipc > points[0].result.ipc

    def test_client_sweep_saturates(self, exp):
        points = client_count_sweep(exp, "dss", client_counts=(1, 8),
                                    l2_nominal_mb=8)
        assert points[1].result.ipc > points[0].result.ipc

    def test_sweep_points_reuse_memoized_traces(self, exp):
        # Two sweeps over the same sizes reuse cached MachineResults.
        a = cache_size_sweep(exp, "oltp", sizes_mb=(1.0,))
        b = cache_size_sweep(exp, "oltp", sizes_mb=(1.0,))
        assert a[0].result is b[0].result


class TestDeterminismEndToEnd:
    def test_full_pipeline_reproducible(self):
        vals = []
        for _ in range(2):
            exp = Experiment(scale=SCALE, measure_cycles=WINDOW)
            r = exp.run(fc_cmp(l2_nominal_mb=4, scale=SCALE), "dss")
            vals.append((r.retired, r.ipc, tuple(
                sorted(r.breakdown.as_dict().items()))))
        assert vals[0] == vals[1]
