"""Tests for the tracer bridge, code registry, hash index, and util."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.hash_index import HashIndex
from repro.db.tracer import CodeRegistry, MemoryTracer, NullTracer
from repro.db.util import stable_hash
from repro.simulator.addresses import AddressSpace
from repro.simulator.trace import FLAG_KERNEL, FLAG_STREAM, FLAG_WRITE


class TestCodeRegistry:
    def test_known_modules_get_declared_size(self):
        reg = CodeRegistry(AddressSpace())
        region = reg.region("storage.btree")
        from repro.db.costs import CODE_FOOTPRINTS
        assert region.size == CODE_FOOTPRINTS["storage.btree"]

    def test_unknown_module_default_size(self):
        reg = CodeRegistry(AddressSpace())
        assert reg.region("whatever.unknown").size == 4 * 1024

    def test_region_reused(self):
        reg = CodeRegistry(AddressSpace())
        assert reg.region("exec.sort") is reg.region("exec.sort")

    def test_total_bytes(self):
        reg = CodeRegistry(AddressSpace())
        reg.region("exec.sort")
        reg.region("exec.filter")
        assert reg.total_bytes == reg.region("exec.sort").size + \
            reg.region("exec.filter").size


class TestMemoryTracer:
    def make(self):
        space = AddressSpace()
        return MemoryTracer(CodeRegistry(space), "c0", ilp=2.0,
                            branch_mpki=3.0)

    def test_compute_accumulates_until_data(self):
        tr = self.make()
        tr.compute(10)
        tr.compute(5)
        tr.data(0x100)
        trace = tr.finish()
        assert trace.icounts[0] == 16  # 15 + 1 for the access itself

    def test_flags_recorded(self):
        tr = self.make()
        tr.data(0x100, write=True, stream=True)
        tr.data(0x200, kernel=True)
        trace = tr.finish()
        assert trace.flags[0] & FLAG_WRITE and trace.flags[0] & FLAG_STREAM
        assert trace.flags[1] & FLAG_KERNEL

    def test_enter_switches_region(self):
        tr = self.make()
        tr.enter("exec.seqscan")
        tr.data(0x100)
        tr.enter("exec.sort")
        tr.data(0x200)
        trace = tr.finish()
        assert trace.regions[0] != trace.regions[1]
        names = [trace.footprints[r].name for r in trace.regions[:2]]
        assert names == ["exec.seqscan", "exec.sort"]

    def test_trailing_compute_flushed_on_finish(self):
        tr = self.make()
        tr.data(0x100)
        tr.compute(42)
        trace = tr.finish()
        assert len(trace) == 2
        assert trace.icounts[1] == 43

    def test_finish_twice_rejected(self):
        tr = self.make()
        tr.data(0x100)
        tr.finish()
        with pytest.raises(RuntimeError):
            tr.finish()

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            self.make().compute(-1)

    def test_metadata_propagates(self):
        tr = self.make()
        tr.data(0x100)
        trace = tr.finish()
        assert trace.ilp == 2.0 and trace.branch_mpki == 3.0

    def test_null_tracer_is_inert(self):
        nt = NullTracer()
        nt.enter("x")
        nt.compute(5)
        nt.data(0x100, write=True)
        assert not nt.enabled


class TestHashIndex:
    def test_insert_search(self):
        idx = HashIndex(AddressSpace(), "h", n_buckets=64)
        idx.insert(5, "a")
        idx.insert(5, "b")
        idx.insert(6, "c")
        assert sorted(idx.search(5)) == ["a", "b"]
        assert idx.search(7) == []
        assert idx.n_entries == 3

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            HashIndex(AddressSpace(), "h", n_buckets=0)

    def test_chain_length(self):
        idx = HashIndex(AddressSpace(), "h", n_buckets=1)
        for i in range(10):
            idx.insert(i, i)
        assert idx.chain_length(0) == 10

    def test_probe_emits_chain_walk(self):
        space = AddressSpace()
        idx = HashIndex(space, "h", n_buckets=1)
        for i in range(5):
            idx.insert(i, i)
        tracer = MemoryTracer(CodeRegistry(space), "c")
        idx.search(3, tracer)
        trace = tracer.finish()
        assert len(trace) >= 6  # bucket + 5 chain entries


class TestStableHash:
    def test_supported_types(self):
        for v in (42, -7, "abc", b"abc", (1, "x"), 3.5):
            assert stable_hash(v) >= 0
            assert stable_hash(v) == stable_hash(v)

    def test_distinct_values_usually_differ(self):
        hashes = {stable_hash(i) for i in range(1000)}
        assert len(hashes) == 1000

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            stable_hash([1, 2])


@settings(max_examples=50, deadline=None)
@given(st.one_of(
    st.integers(-2**62, 2**62), st.text(max_size=30),
    st.tuples(st.integers(), st.text(max_size=5)),
))
def test_stable_hash_is_nonnegative_and_stable(v):
    h = stable_hash(v)
    assert 0 <= h <= 0x7FFF_FFFF_FFFF_FFFF
    assert h == stable_hash(v)
