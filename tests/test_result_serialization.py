"""Round-trip tests for the versioned MachineResult serialization.

The analytical model (:mod:`repro.model`) reads simulator measurements
exclusively through ``MachineResult.to_dict()``; these tests pin the
schema contract: every raw field survives a dict -> JSON -> dict ->
``from_dict`` round trip exactly, the derived stall/miss blocks are
present and recomputable, and foreign documents fail loudly.
"""

import json
import math

import pytest

from repro.core.experiment import Experiment
from repro.simulator.configs import fc_cmp, lc_cmp
from repro.simulator.machine import RESULT_SCHEMA, MachineResult

SCALE = 0.01
CYCLES = 5_000


@pytest.fixture(scope="module")
def result():
    exp = Experiment(scale=SCALE, measure_cycles=CYCLES, use_cache=False)
    return exp.run(fc_cmp(n_cores=2, l2_nominal_mb=2.0, scale=SCALE), "dss")


class TestRoundTrip:
    def test_json_round_trip_is_field_identical(self, result):
        doc = json.loads(json.dumps(result.to_dict()))
        back = MachineResult.from_dict(doc)
        assert back.config_name == result.config_name
        assert back.workload_name == result.workload_name
        assert back.breakdown.as_dict() == result.breakdown.as_dict()
        assert len(back.per_core) == len(result.per_core)
        for a, b in zip(back.per_core, result.per_core):
            assert a.as_dict() == b.as_dict()
        assert back.retired == result.retired
        assert back.elapsed == result.elapsed
        assert back.ipc == result.ipc
        assert back.response_cycles == result.response_cycles
        assert back.hier_stats == result.hier_stats
        assert back.l2_miss_rate == result.l2_miss_rate
        assert back.extras == result.extras

    def test_derived_blocks_recompute_identically(self, result):
        doc = result.to_dict()
        back = MachineResult.from_dict(json.loads(json.dumps(doc)))
        assert back.stall_cpi() == doc["stall_cpi"]
        assert back.miss_ratios() == doc["miss_ratios"]
        assert back.cpi == pytest.approx(result.cpi)

    def test_response_mode_round_trip(self):
        exp = Experiment(scale=SCALE, measure_cycles=CYCLES, use_cache=False)
        res = exp.run(lc_cmp(n_cores=2, l2_nominal_mb=2.0, scale=SCALE),
                      "dss", "unsaturated")
        back = MachineResult.from_dict(res.to_dict())
        assert back.response_cycles == res.response_cycles
        assert back.response_cycles is not None


class TestSchemaContract:
    def test_schema_tag_present(self, result):
        assert result.to_dict()["schema"] == RESULT_SCHEMA

    def test_unknown_schema_rejected(self, result):
        doc = result.to_dict()
        doc["schema"] = "machine-result-v999"
        with pytest.raises(ValueError, match="schema"):
            MachineResult.from_dict(doc)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError):
            MachineResult.from_dict([1, 2, 3])

    def test_missing_raw_field_rejected(self, result):
        doc = result.to_dict()
        del doc["breakdown"]
        with pytest.raises(ValueError, match="malformed"):
            MachineResult.from_dict(doc)

    def test_stall_and_miss_fields_named(self, result):
        """The model-facing field names are part of the contract."""
        doc = result.to_dict()
        for key in ("computation", "i_l2", "i_mem", "d_l1x", "d_l2",
                    "d_mem", "d_coh", "other", "idle"):
            assert key in doc["stall_cpi"]
        for key in ("l1d_miss", "l1x_fraction", "l2_fraction",
                    "mem_fraction", "coh_fraction", "l2_miss_rate",
                    "accesses_per_instr", "instr_port_per_instr",
                    "l2_queue_wait"):
            assert key in doc["miss_ratios"]

    def test_miss_ratio_invariants(self, result):
        mr = result.miss_ratios()
        served = (mr["l1x_fraction"] + mr["l2_fraction"]
                  + mr["mem_fraction"] + mr["coh_fraction"])
        assert mr["l1d_miss"] == pytest.approx(served)
        assert 0.0 <= mr["l1d_miss"] <= 1.0
        assert mr["accesses_per_instr"] > 0
        assert mr["l2_queue_wait"] >= 0.0
        assert not math.isnan(mr["l2_queue_wait"])
