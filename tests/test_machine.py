"""Unit tests for the Machine warm/measure loop."""

import pytest

from repro.simulator.configs import fc_cmp, fc_smp, lc_cmp
from repro.simulator.machine import Machine
from repro.simulator.trace import TraceBuilder, Workload


def make_trace(name, n_events=200, footprint_lines=512, seed=1,
               write_every=5):
    import random
    rng = random.Random(seed)
    tb = TraceBuilder(name, ilp=2.0, branch_mpki=2.0, ilp_inorder=1.2)
    rid = tb.register_code("mod", 0x10_0000, 32)
    base = 0x4000_0000
    for i in range(n_events):
        addr = base + rng.randrange(footprint_lines) * 64
        tb.event(30, addr, 1 if i % write_every == 0 else 0, rid)
    return tb.build()


def make_workload(n_clients=4, **kw):
    return Workload(
        "synthetic",
        [make_trace(f"c{i}", seed=i, **kw) for i in range(n_clients)],
        kind="dss",
    )


class TestModes:
    def test_throughput_mode_metrics(self):
        m = Machine(fc_cmp(n_cores=2, l2_nominal_mb=1, scale=1.0))
        r = m.run(make_workload(2), measure_cycles=20_000)
        assert r.elapsed == 20_000
        assert r.retired > 0
        assert r.ipc == pytest.approx(r.retired / 20_000)
        assert r.response_cycles is None

    def test_response_mode_metrics(self):
        m = Machine(fc_cmp(n_cores=2, l2_nominal_mb=1, scale=1.0))
        r = m.run(Workload("w", [make_trace("solo")]), mode="response")
        assert r.response_cycles is not None and r.response_cycles > 0
        assert r.elapsed == r.response_cycles

    def test_parallel_response_completes_all_clients(self):
        """Response mode with several clients (intra-query parallelism,
        Section 6.1): finishes when the slowest partition does."""
        m = Machine(fc_cmp(n_cores=2, l2_nominal_mb=1, scale=1.0))
        r = m.run(make_workload(2), mode="response")
        assert r.response_cycles > 0
        solo = Machine(fc_cmp(n_cores=2, l2_nominal_mb=1, scale=1.0)).run(
            Workload("w", [make_trace("solo")]), mode="response")
        # Two equal partitions on two cores: not slower than one partition.
        assert r.response_cycles < 2 * solo.response_cycles

    def test_response_rejects_more_clients_than_contexts(self):
        m = Machine(fc_cmp(n_cores=2, l2_nominal_mb=1, scale=1.0))
        with pytest.raises(ValueError):
            m.run(make_workload(3), mode="response")

    def test_unknown_mode_rejected(self):
        m = Machine(fc_cmp(n_cores=2, l2_nominal_mb=1, scale=1.0))
        with pytest.raises(ValueError):
            m.run(make_workload(1), mode="banana")

    def test_warm_fraction_bounds_checked(self):
        m = Machine(fc_cmp(n_cores=2, l2_nominal_mb=1, scale=1.0))
        with pytest.raises(ValueError):
            m.run(make_workload(1), warm_fraction=1.5)


class TestDeterminism:
    def test_same_inputs_same_outputs(self):
        results = []
        for _ in range(2):
            m = Machine(fc_cmp(n_cores=2, l2_nominal_mb=1, scale=1.0))
            r = m.run(make_workload(4), measure_cycles=30_000)
            results.append((r.retired, r.ipc, r.breakdown.as_dict()))
        assert results[0] == results[1]

    def test_lean_machine_deterministic(self):
        results = []
        for _ in range(2):
            m = Machine(lc_cmp(n_cores=2, l2_nominal_mb=1, scale=1.0))
            r = m.run(make_workload(8), measure_cycles=30_000)
            results.append((r.retired, r.breakdown.as_dict()))
        assert results[0] == results[1]


class TestAssignment:
    def test_fewer_clients_than_cores_spread_out(self):
        m = Machine(fc_cmp(n_cores=4, l2_nominal_mb=1, scale=1.0))
        r = m.run(make_workload(2), measure_cycles=10_000)
        # Two active cores, two idle.
        assert len(r.per_core) == 2

    def test_more_clients_than_contexts_all_served(self):
        m = Machine(fc_cmp(n_cores=2, l2_nominal_mb=1, scale=1.0))
        r = m.run(make_workload(6, n_events=50), measure_cycles=60_000)
        progress = r.extras["context_progress"]
        assert len(progress) == 2  # two contexts carrying 3 clients each
        assert all(p > 0 for p in progress)

    def test_lean_machine_has_four_contexts_per_core(self):
        cfg = lc_cmp(n_cores=2, l2_nominal_mb=1, scale=1.0)
        assert cfg.n_hardware_contexts == 8
        m = Machine(cfg)
        r = m.run(make_workload(8, n_events=50), measure_cycles=40_000)
        assert len(r.extras["context_progress"]) == 8


class TestWarmEffect:
    def test_warming_reduces_measured_misses(self):
        """With full warm and a loop-sized footprint, measurement sees far
        fewer memory-level accesses than a cold run."""
        wl = make_workload(2, n_events=300, footprint_lines=128)
        cold = Machine(fc_cmp(n_cores=2, l2_nominal_mb=1, scale=1.0)).run(
            wl, measure_cycles=20_000, warm_passes=0)
        warm = Machine(fc_cmp(n_cores=2, l2_nominal_mb=1, scale=1.0)).run(
            wl, measure_cycles=20_000, warm_passes=1, warm_fraction=0.99)
        cold_mem = cold.hier_stats.data_level_counts[3] / max(
            1, cold.hier_stats.data_accesses)
        warm_mem = warm.hier_stats.data_level_counts[3] / max(
            1, warm.hier_stats.data_accesses)
        assert warm_mem < cold_mem

    def test_breakdown_time_conservation(self):
        m = Machine(lc_cmp(n_cores=2, l2_nominal_mb=1, scale=1.0))
        r = m.run(make_workload(8, n_events=100), measure_cycles=25_000)
        for bd in r.per_core:
            assert bd.total <= 25_000 * 1.1  # within one block overshoot


class TestSmpMachine:
    def test_smp_runs_and_reports_coherence(self):
        wl = Workload("w", [
            make_trace(f"c{i}", seed=0, footprint_lines=64, write_every=2)
            for i in range(4)
        ])
        m = Machine(fc_smp(n_nodes=4, private_l2_nominal_mb=1, scale=1.0))
        r = m.run(wl, measure_cycles=30_000)
        # All clients share one footprint and write it: coherence traffic.
        assert r.hier_stats.coherence_misses > 0
        assert r.breakdown.d_coh > 0

    def test_cmp_same_workload_no_coherence(self):
        wl = Workload("w", [
            make_trace(f"c{i}", seed=0, footprint_lines=64, write_every=2)
            for i in range(4)
        ])
        m = Machine(fc_cmp(n_cores=4, l2_nominal_mb=1, scale=1.0))
        r = m.run(wl, measure_cycles=30_000)
        assert r.hier_stats.coherence_misses == 0
        assert r.breakdown.d_coh == 0
