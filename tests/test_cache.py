"""Unit tests for the set-associative cache model."""

import pytest

from repro.simulator.cache import CLEAN, DIRTY, CacheStats, SetAssocCache


def make_cache(size=8 * 1024, assoc=2, line=64):
    return SetAssocCache("T", size, assoc, line)


class TestConstruction:
    def test_geometry(self):
        c = SetAssocCache("T", 64 * 1024, 4, 64)
        assert c.n_sets == 64 * 1024 // (4 * 64)
        assert c.size_bytes == 64 * 1024

    def test_non_power_of_two_sets_allowed(self):
        c = SetAssocCache("T", 26 * 1024 * 1024, 16, 64)
        assert c.n_sets == 26 * 1024 * 1024 // (16 * 64)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            SetAssocCache("T", 0, 2)

    def test_rejects_zero_assoc(self):
        with pytest.raises(ValueError):
            SetAssocCache("T", 1024, 0)

    def test_rejects_size_below_one_set(self):
        with pytest.raises(ValueError):
            SetAssocCache("T", 64, 2, 64)


class TestAccess:
    def test_cold_miss_then_hit(self):
        c = make_cache()
        hit, victim = c.access(100, False)
        assert not hit and victim is None
        hit, victim = c.access(100, False)
        assert hit and victim is None
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_write_marks_dirty(self):
        c = make_cache()
        c.access(5, True)
        assert c.lookup(5) == DIRTY

    def test_read_leaves_clean(self):
        c = make_cache()
        c.access(5, False)
        assert c.lookup(5) == CLEAN

    def test_write_hit_dirties_clean_line(self):
        c = make_cache()
        c.access(5, False)
        c.access(5, True)
        assert c.lookup(5) == DIRTY

    def test_eviction_on_set_overflow(self):
        c = make_cache(size=2 * 64 * 4, assoc=2)  # 4 sets, 2 ways
        n = c.n_sets
        # Three lines mapping to the same set: third evicts the LRU (first).
        c.access(0, False)
        c.access(n, False)
        hit, victim = c.access(2 * n, False)
        assert not hit
        assert victim == (0, CLEAN)
        assert 0 not in c
        assert n in c and 2 * n in c

    def test_lru_order_respects_rereference(self):
        c = make_cache(size=2 * 64 * 4, assoc=2)
        n = c.n_sets
        c.access(0, False)
        c.access(n, False)
        c.access(0, False)  # 0 becomes MRU; n is now LRU
        _, victim = c.access(2 * n, False)
        assert victim[0] == n

    def test_dirty_victim_counts_writeback(self):
        c = make_cache(size=2 * 64 * 4, assoc=2)
        n = c.n_sets
        c.access(0, True)
        c.access(n, False)
        _, victim = c.access(2 * n, False)
        assert victim == (0, DIRTY)
        assert c.stats.writebacks == 1

    def test_capacity_never_exceeded(self):
        c = make_cache(size=4 * 1024, assoc=4)
        for line in range(1000):
            c.access(line, line % 3 == 0)
        assert c.resident_lines <= c.n_sets * c.assoc

    def test_distinct_sets_do_not_interfere(self):
        c = make_cache(size=2 * 64 * 4, assoc=2)
        for line in range(c.n_sets):
            c.access(line, False)
        assert all(line in c for line in range(c.n_sets))


class TestPrimitives:
    def test_insert_returns_victim(self):
        c = make_cache(size=2 * 64 * 4, assoc=2)
        n = c.n_sets
        assert c.insert(0, 3) is None
        assert c.insert(n, 2) is None
        victim = c.insert(2 * n, 1)
        assert victim == (0, 3)

    def test_insert_existing_updates_state(self):
        c = make_cache()
        c.insert(7, 1)
        assert c.insert(7, 2) is None
        assert c.lookup(7) == 2

    def test_set_state_requires_residency(self):
        c = make_cache()
        with pytest.raises(KeyError):
            c.set_state(9, 1)

    def test_invalidate_returns_state(self):
        c = make_cache()
        c.insert(3, 5)
        assert c.invalidate(3) == 5
        assert c.invalidate(3) is None
        assert 3 not in c

    def test_touch_moves_to_mru(self):
        c = make_cache(size=2 * 64 * 4, assoc=2)
        n = c.n_sets
        c.insert(0, 0)
        c.insert(n, 0)
        c.touch(0)
        victim = c.insert(2 * n, 0)
        assert victim[0] == n

    def test_lookup_does_not_count_stats(self):
        c = make_cache()
        c.lookup(1)
        assert c.stats.accesses == 0


class TestStats:
    def test_rates(self):
        s = CacheStats(hits=3, misses=1)
        assert s.accesses == 4
        assert s.miss_rate == 0.25
        assert s.hit_rate == 0.75

    def test_rates_empty(self):
        s = CacheStats()
        assert s.miss_rate == 0.0 and s.hit_rate == 0.0

    def test_flush_stats_resets(self):
        c = make_cache()
        c.access(1, False)
        snap = c.flush_stats()
        assert snap.misses == 1
        assert c.stats.accesses == 0
