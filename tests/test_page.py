"""Unit tests for page formats (NSM and PAX layout arithmetic)."""

import pytest

from repro.db.page import (
    PAGE_HEADER_BYTES,
    SLOT_ENTRY_BYTES,
    PageFormat,
    PageLayout,
)
from repro.db.schema import Schema
from repro.db.types import char, float64, int32, int64
from repro.simulator.addresses import PAGE_SIZE


def schema():
    return Schema("t", [int64("a"), int32("b"), float64("c"), char("d", 20)])


BASE = 0x10_0000


class TestNSM:
    def test_capacity(self):
        fmt = PageFormat(schema(), PageLayout.NSM)
        per_row = schema().row_width + SLOT_ENTRY_BYTES
        assert fmt.capacity == (PAGE_SIZE - PAGE_HEADER_BYTES) // per_row

    def test_record_addresses_contiguous(self):
        fmt = PageFormat(schema(), PageLayout.NSM)
        w = schema().row_width
        assert fmt.record_addr(BASE, 0) == BASE + PAGE_HEADER_BYTES
        assert fmt.record_addr(BASE, 3) == BASE + PAGE_HEADER_BYTES + 3 * w

    def test_field_addr_uses_column_offset(self):
        s = schema()
        fmt = PageFormat(s, PageLayout.NSM)
        rec = fmt.record_addr(BASE, 2)
        assert fmt.field_addr(BASE, 2, 0) == rec
        assert fmt.field_addr(BASE, 2, 1) == rec + 8
        assert fmt.field_addr(BASE, 2, 2) == rec + 12
        assert fmt.field_addr(BASE, 2, 3) == rec + 20

    def test_slot_directory_grows_from_page_end(self):
        fmt = PageFormat(schema(), PageLayout.NSM)
        assert fmt.slot_addr(BASE, 0) == BASE + PAGE_SIZE - SLOT_ENTRY_BYTES
        assert fmt.slot_addr(BASE, 1) == BASE + PAGE_SIZE - 2 * SLOT_ENTRY_BYTES

    def test_record_lines_cover_row(self):
        s = schema()
        fmt = PageFormat(s, PageLayout.NSM)
        lines = fmt.record_lines(BASE, 5)
        start = fmt.record_addr(BASE, 5)
        assert lines[0] <= start
        assert lines[-1] + 64 >= start + s.row_width
        assert all(a % 64 == 0 for a in lines)

    def test_all_records_within_page(self):
        s = schema()
        fmt = PageFormat(s, PageLayout.NSM)
        last = fmt.record_addr(BASE, fmt.capacity - 1) + s.row_width
        assert last <= BASE + PAGE_SIZE

    def test_slot_bounds_checked(self):
        fmt = PageFormat(schema(), PageLayout.NSM)
        with pytest.raises(ValueError):
            fmt.field_addr(BASE, fmt.capacity, 0)
        with pytest.raises(ValueError):
            fmt.record_addr(BASE, -1)


class TestPAX:
    def test_minipages_are_disjoint_and_ordered(self):
        s = schema()
        fmt = PageFormat(s, PageLayout.PAX)
        ends = []
        for col in range(s.n_columns):
            first = fmt.field_addr(BASE, 0, col)
            last = fmt.field_addr(BASE, fmt.capacity - 1, col)
            ends.append((first, last + s.column_width(col)))
        for (f1, e1), (f2, _) in zip(ends, ends[1:]):
            assert e1 <= f2, "minipages overlap"
        assert ends[-1][1] <= BASE + PAGE_SIZE

    def test_same_column_values_adjacent(self):
        s = schema()
        fmt = PageFormat(s, PageLayout.PAX)
        a0 = fmt.field_addr(BASE, 0, 0)
        a1 = fmt.field_addr(BASE, 1, 0)
        assert a1 - a0 == s.column_width(0)

    def test_projection_touches_fewer_lines_than_nsm(self):
        """The PAX benefit: scanning one narrow column touches far fewer
        distinct lines than NSM full-record access."""
        s = schema()
        nsm = PageFormat(s, PageLayout.NSM)
        pax = PageFormat(s, PageLayout.PAX)
        n = min(nsm.capacity, pax.capacity)
        nsm_lines = {nsm.record_addr(BASE, i) & ~63 for i in range(n)}
        pax_lines = {pax.field_addr(BASE, i, 1) & ~63 for i in range(n)}
        assert len(pax_lines) * 3 < len(nsm_lines)

    def test_record_lines_one_per_minipage(self):
        s = schema()
        fmt = PageFormat(s, PageLayout.PAX)
        lines = fmt.record_lines(BASE, 0)
        assert len(lines) == s.n_columns  # distinct minipage lines

    def test_wide_row_rejected(self):
        s = Schema("wide", [char("x", PAGE_SIZE)])
        with pytest.raises(ValueError):
            PageFormat(s, PageLayout.NSM)
