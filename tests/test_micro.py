"""Tests for the DBmbench-style microbenchmarks."""

import pytest

from repro.simulator.configs import fc_cmp
from repro.simulator.machine import Machine
from repro.workloads.micro import MicroDatabase, micro_idx, micro_nj, micro_ss
from repro.workloads.profile import profile_trace


class TestGenerators:
    def test_validation(self):
        with pytest.raises(ValueError):
            MicroDatabase(n_rows=0)
        with pytest.raises(ValueError):
            micro_ss(selectivity=0)
        with pytest.raises(ValueError):
            micro_idx(update_fraction=2.0)
        with pytest.raises(ValueError):
            micro_nj(build_selectivity=0)

    def test_deterministic(self):
        a = micro_ss(n_rows=2000)
        b = micro_ss(n_rows=2000)
        assert list(a.traces[0].addrs) == list(b.traces[0].addrs)

    def test_uss_profiles_like_dss(self):
        p = profile_trace(micro_ss(n_rows=3000).traces[0])
        assert p.stream > 0.4          # streaming scan refs
        assert p.write < 0.1           # read-only
        assert p.dependent < 0.7

    def test_uidx_profiles_like_oltp(self):
        p = profile_trace(micro_idx(n_probes=400, n_rows=50_000).traces[0])
        assert p.dependent > 0.5       # index descents + row chases
        assert p.write > 0.15          # updates + log
        assert p.stream < 0.05

    def test_unj_is_probe_dominated(self):
        p = profile_trace(micro_nj(n_rows=3000).traces[0])
        assert "exec.hashjoin" in p.module_instructions
        top = max(p.module_instructions, key=p.module_instructions.get)
        assert top in ("exec.hashjoin", "exec.seqscan")


class TestProxiesBehaveLikeOriginals:
    """The DBmbench claim: the proxies reproduce the big workloads'
    microarchitectural contrast on the same machine."""

    @pytest.mark.slow
    def test_uss_streams_cheaper_than_uidx_chases(self):
        """Per data reference, the fat core pays far less for the scan
        proxy (streamed misses) than for the index proxy (dependent
        chases) — the DSS/OLTP contrast in miniature."""
        cost = {}
        for wl in (micro_ss(n_rows=12_000), micro_idx(n_probes=1500)):
            machine = Machine(fc_cmp(l2_nominal_mb=4, scale=0.25))
            r = machine.run(wl, mode="response", warm_fraction=0.3)
            cost[wl.name] = (r.response_cycles
                             / max(1, r.hier_stats.data_accesses))
        assert cost["uSS"] < 0.75 * cost["uIDX"]
