"""Cross-process trace store: round-trip fidelity and corruption safety.

The store may *never* change results (a stored+reloaded workload must be
bit-identical to a freshly built one) and may *never* crash a run (any
corrupt, truncated, or colliding entry is detected, counted, and treated
as a miss so the caller rebuilds).
"""

import dataclasses
from array import array

import pytest

from repro.core.parallel import WARM_FRACTIONS
from repro.simulator.configs import fc_cmp
from repro.simulator.machine import Machine
from repro.simulator.trace import CodeFootprint, Trace, Workload
from repro.workloads import driver
from repro.workloads.tracestore import (
    ENV_TRACE_DIR,
    _HEADER,
    _MAGIC,
    TraceStore,
    store_for,
)

#: Matches the determinism/golden suites so the process-level lru_cache
#: shares the (expensive) builds with them in a full test run.
SCALE = 0.02

BUNDLES = [
    ("oltp", "saturated"),
    ("oltp", "unsaturated"),
    ("dss", "saturated"),
    ("dss", "unsaturated"),
]


@pytest.fixture(autouse=True)
def no_ambient_store(monkeypatch):
    """Keep the driver's store wiring out of tests that build directly."""
    monkeypatch.delenv(ENV_TRACE_DIR, raising=False)


def _clear_driver_caches():
    driver.clear_workload_caches()


def _tiny_workload(name="tiny"):
    """A hand-built two-trace workload (no engine run needed)."""
    traces = []
    for i in range(2):
        n = 50 + i
        traces.append(Trace.from_columns(
            name=f"{name}-client-{i}",
            icounts=array("I", range(1, n + 1)),
            addrs=array("Q", (0x4000_0000 + 64 * j for j in range(n))),
            flags=array("B", (j % 8 for j in range(n))),
            regions=array("H", (0 for _ in range(n))),
            footprints=[CodeFootprint(name="code", base=0x1000, n_lines=8)],
            ilp=2.0,
            branch_mpki=5.0,
            ilp_inorder=1.0,
        ))
    return Workload(name=name, traces=traces, kind="dss", saturated=False,
                    metadata={"scale": 1.0})


def _traces_equal(a: Workload, b: Workload) -> bool:
    if len(a.traces) != len(b.traces):
        return False
    for ta, tb in zip(a.traces, b.traces):
        if (ta.name, ta.ilp, ta.ilp_inorder, ta.branch_mpki) != \
                (tb.name, tb.ilp, tb.ilp_inorder, tb.branch_mpki):
            return False
        if list(ta.accesses()) != list(tb.accesses()):
            return False
        if [(f.name, f.base, f.n_lines) for f in ta.footprints] != \
                [(f.name, f.base, f.n_lines) for f in tb.footprints]:
            return False
    return True


def _simulate(workload: Workload, kind: str, regime: str):
    config = fc_cmp(n_cores=2, l2_nominal_mb=1.0, scale=SCALE)
    return Machine(config).run(
        workload,
        mode="response" if regime == "unsaturated" else "throughput",
        measure_cycles=20_000,
        warm_fraction=WARM_FRACTIONS[kind],
    )


class TestRoundTrip:
    def test_tiny_workload_survives_byte_for_byte(self, tmp_path):
        store = TraceStore(tmp_path)
        w = _tiny_workload()
        store.put(("k", 1), w)
        assert store.stats.stores == 1
        got = store.get(("k", 1))
        assert got is not None and got is not w
        assert _traces_equal(w, got)
        assert (got.name, got.kind, got.saturated, got.metadata) == \
            (w.name, w.kind, w.saturated, w.metadata)
        assert store.stats.hits == 1 and store.stats.errors == 0

    @pytest.mark.slow
    @pytest.mark.parametrize("kind,regime", BUNDLES)
    def test_reloaded_bundle_gives_identical_machine_result(
            self, tmp_path, kind, regime):
        """The tentpole contract, per (kind, regime) bundle: simulating a
        stored+reloaded workload yields a field-for-field identical
        MachineResult — not approximately, identically."""
        fresh = driver.workload_for(kind, regime, SCALE)
        store = TraceStore(tmp_path)
        key = ("roundtrip", kind, regime, SCALE)
        store.put(key, fresh)
        thawed = store.get(key)
        assert thawed is not None and thawed is not fresh
        assert _traces_equal(fresh, thawed)
        r_fresh = _simulate(fresh, kind, regime)
        r_thawed = _simulate(thawed, kind, regime)
        assert dataclasses.asdict(r_fresh) == dataclasses.asdict(r_thawed)


class TestCorruption:
    def _stored_path(self, tmp_path, key=("k", 1)):
        store = TraceStore(tmp_path)
        store.put(key, _tiny_workload())
        return store, store.path_for(key)

    def test_truncated_entry_is_miss_then_rebuilt(self, tmp_path):
        store, path = self._stored_path(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) - 10])
        assert store.get(("k", 1)) is None
        assert store.stats.errors == 1 and store.stats.misses == 1
        assert not path.exists()          # bad entry removed...
        store.put(("k", 1), _tiny_workload())
        assert store.get(("k", 1)) is not None   # ...and rebuilt cleanly

    def test_truncated_header_is_miss(self, tmp_path):
        store, path = self._stored_path(tmp_path)
        path.write_bytes(b"RT")
        assert store.get(("k", 1)) is None
        assert store.stats.errors == 1

    def test_flipped_payload_byte_fails_checksum(self, tmp_path):
        store, path = self._stored_path(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[_HEADER.size + 7] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert store.get(("k", 1)) is None
        assert store.stats.errors == 1

    def test_bad_magic_is_miss(self, tmp_path):
        store, path = self._stored_path(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[:4] = b"XXXX"
        path.write_bytes(bytes(blob))
        assert store.get(("k", 1)) is None
        assert store.stats.errors == 1
        assert _MAGIC == b"RTC2"

    def test_old_format_entry_is_clean_miss(self, tmp_path):
        """A v1 entry (``RTRC`` magic, pickled-arrays payload) at the
        right path is rejected at the header check — an error-counted
        miss, never a misparse — then unlinked and rebuilt."""
        import hashlib
        import pickle
        store, path = self._stored_path(tmp_path)
        payload = pickle.dumps({"version": "repro-traces-v1"})
        blob = _HEADER.pack(b"RTRC", len(payload),
                            hashlib.sha256(payload).digest()) + payload
        path.write_bytes(blob)
        assert store.get(("k", 1)) is None
        assert store.stats.errors == 1 and store.stats.misses == 1
        assert not path.exists()
        store.put(("k", 1), _tiny_workload())
        assert store.get(("k", 1)) is not None

    def test_flipped_column_byte_detected_and_rebuilt(self, tmp_path):
        """The header SHA covers the raw column blobs, not just the
        metadata document: one bit flipped deep inside the address
        column is detected, the entry unlinked, and a rebuild served."""
        store, path = self._stored_path(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[-5] ^= 0x01          # inside the last trace's meta column
        path.write_bytes(bytes(blob))
        assert store.get(("k", 1)) is None
        assert store.stats.errors == 1
        assert not path.exists()
        store.put(("k", 1), _tiny_workload())
        got = store.get(("k", 1))
        assert got is not None and _traces_equal(got, _tiny_workload())

    def test_truncated_column_data_is_miss(self, tmp_path):
        """An entry whose payload-length and checksum are valid but whose
        per-trace offsets point past the end (internal truncation) is
        caught by the column bounds check."""
        import hashlib
        from repro.workloads.tracestore import _freeze
        store = TraceStore(tmp_path)
        payload = bytearray(_freeze(("k", 1), _tiny_workload()))
        payload = bytes(payload[:-16])     # drop the final column words
        blob = _HEADER.pack(_MAGIC, len(payload),
                            hashlib.sha256(payload).digest()) + payload
        path = store.path_for(("k", 1))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(blob)
        assert store.get(("k", 1)) is None
        assert store.stats.errors == 1

    def test_key_echo_rejects_misfiled_entry(self, tmp_path):
        """An entry sitting at the wrong path (hash collision, copied
        file) is rejected by the embedded key echo."""
        store, path = self._stored_path(tmp_path, key=("k", 1))
        other = store.path_for(("k", 2))
        other.parent.mkdir(parents=True, exist_ok=True)
        other.write_bytes(path.read_bytes())
        assert store.get(("k", 2)) is None
        assert store.stats.errors == 1

    def test_garbage_payload_is_miss(self, tmp_path):
        import hashlib
        store = TraceStore(tmp_path)
        payload = b"not a pickle"
        blob = _HEADER.pack(_MAGIC, len(payload),
                            hashlib.sha256(payload).digest()) + payload
        path = store.path_for(("k", 1))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(blob)
        assert store.get(("k", 1)) is None
        assert store.stats.errors == 1

    def test_missing_entry_is_plain_miss_not_error(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.get(("absent",)) is None
        assert store.stats.misses == 1 and store.stats.errors == 0


class TestDriverWiring:
    @pytest.mark.slow
    def test_second_process_equivalent_build_is_served_from_store(
            self, tmp_path, monkeypatch):
        """Clearing the lru_cache stands in for a new process: the second
        build must come from the store and carry identical arrays."""
        monkeypatch.setenv(ENV_TRACE_DIR, str(tmp_path))
        _clear_driver_caches()
        try:
            w1 = driver.dss_unsaturated(scale=SCALE)
            store = store_for(str(tmp_path))
            assert store.stats.stores == 1
            _clear_driver_caches()
            w2 = driver.dss_unsaturated(scale=SCALE)
            assert store.stats.hits == 1
            assert w2 is not w1
            assert _traces_equal(w1, w2)
        finally:
            # Leave no store-thawed workloads memoized for other tests.
            _clear_driver_caches()

    def test_unset_env_disables_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_TRACE_DIR, "")
        from repro.workloads.tracestore import active_store
        assert active_store() is None
