"""Shared-memory bundle arena lifecycle: no leaks, no double-frees.

The arena (DESIGN.md §11) has exactly one owner — the parent that
created it in ``run_specs`` — and exactly one unlink, in the ``finally``
after the pool is gone.  These tests drive that contract through clean
sweeps, ``REPRO_FAULTS`` worker crashes, and checkpoint-resume, and pin
the telemetry ledger (``shm_create`` / ``shm_attach`` / ``shm_cleanup``)
that makes the lifecycle auditable after the fact.
"""

import multiprocessing.shared_memory as shared_memory
import os

import pytest

from repro.core import parallel
from repro.core.parallel import (
    RunSpec,
    SharedBundleArena,
    SweepError,
    attach_segment,
    attached_segments,
    release_segment,
    run_specs,
    shm_enabled,
)
from repro.core.telemetry import load_events
from repro.simulator.configs import fc_cmp
from repro.workloads import driver

SCALE = 0.01
CYCLES = 5_000


def _specs(n: int = 3) -> list[RunSpec]:
    return [
        RunSpec(fc_cmp(n_cores=4, l2_nominal_mb=mb, scale=SCALE), "dss")
        for mb in (1.0, 2.0, 4.0, 8.0)[:n]
    ]


def _bundle() -> dict:
    wl = driver.dss_workload(scale=SCALE)
    return {("dss", "saturated", None): wl}


def _segment_exists(name: str) -> bool:
    try:
        seg = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return False
    seg.close()
    return True


@pytest.fixture
def clean_env(monkeypatch):
    for var in ("REPRO_FAULTS", "REPRO_RETRIES", "REPRO_TIMEOUT",
                "REPRO_BACKOFF", "REPRO_FAIL_FAST", "REPRO_CHECKPOINT",
                "REPRO_JOBS", "REPRO_SHM", "REPRO_TELEMETRY"):
        monkeypatch.delenv(var, raising=False)
    return monkeypatch


def _shm_events(path: str) -> dict[str, list[dict]]:
    out: dict[str, list[dict]] = {"shm_create": [], "shm_attach": [],
                                  "shm_cleanup": []}
    for ev in load_events(path):
        if ev["ev"] in out:
            out[ev["ev"]].append(ev)
    return out


pytestmark = pytest.mark.skipif(
    SharedBundleArena.create(_bundle(), SCALE) is None,
    reason="shared memory unusable on this platform")


class TestSegmentRefcounting:
    """attach_segment/release_segment: per-process refcounted mappings."""

    def test_attach_twice_is_one_mapping_two_refs(self):
        arena = SharedBundleArena.create(_bundle(), SCALE)
        name = arena.segment
        try:
            seg1 = attach_segment(name)
            seg2 = attach_segment(name)
            assert seg1 is seg2
            assert attached_segments()[name] == 2
            assert release_segment(name) is True
            assert attached_segments()[name] == 1
            assert release_segment(name) is True
            assert name not in attached_segments()
        finally:
            arena.cleanup()

    def test_release_of_unknown_segment_is_safe_noop(self):
        # Never raises, never double-closes — chaos paths call release
        # unconditionally.
        assert release_segment("repro-shm-never-attached") is False

    def test_release_past_zero_is_safe(self):
        arena = SharedBundleArena.create(_bundle(), SCALE)
        name = arena.segment
        try:
            attach_segment(name)
            assert release_segment(name) is True
            assert release_segment(name) is False
            assert release_segment(name) is False
        finally:
            arena.cleanup()

    def test_attach_after_owner_unlink_raises_cleanly(self):
        arena = SharedBundleArena.create(_bundle(), SCALE)
        name = arena.segment
        arena.cleanup()
        with pytest.raises(FileNotFoundError):
            attach_segment(name)


class TestArenaOwnership:
    def test_cleanup_is_idempotent(self):
        arena = SharedBundleArena.create(_bundle(), SCALE)
        assert _segment_exists(arena.segment)
        assert arena.cleanup() is True
        assert not _segment_exists(arena.segment)
        # Second (and third) cleanup: no-op, no exception, reports False
        # so run_specs emits exactly one shm_cleanup event.
        assert arena.cleanup() is False
        assert arena.cleanup() is False

    def test_manifest_reconstructs_bundles_zero_copy(self):
        bundles = _bundle()
        arena = SharedBundleArena.create(bundles, SCALE)
        try:
            got = parallel._attach_bundles(arena.manifest)
            (coord, wl), = bundles.items()
            shm_wl = got[coord]
            assert [t.name for t in shm_wl.traces] == \
                [t.name for t in wl.traces]
            for ours, theirs in zip(wl.traces, shm_wl.traces):
                assert len(ours) == len(theirs)
                assert isinstance(theirs.addrs, memoryview)
                n = len(ours)
                for i in (0, n // 2, n - 1):
                    assert ours.access_at(i) == theirs.access_at(i)
        finally:
            release_segment(arena.segment)
            arena.cleanup()


class TestArenaServedReplay:
    def test_provider_served_bundles_replay_bit_identical(
            self, clean_env, monkeypatch):
        """With the local registry cold, workload_for serves the arena's
        memoryview-backed bundles — and every MachineResult field must
        equal a direct (array-backed) run.  This is the spawn-worker
        path, exercised in-process."""
        spec = RunSpec(fc_cmp(n_cores=4, l2_nominal_mb=2.0, scale=SCALE),
                       "dss")
        direct = parallel.execute(spec, SCALE, CYCLES)

        arena = SharedBundleArena.create(_bundle(), SCALE)
        try:
            bundles = parallel._attach_bundles(arena.manifest)
            driver.clear_workload_caches()
            monkeypatch.setattr(driver, "_provider",
                                parallel._make_provider(bundles, SCALE))
            via_arena = parallel.execute(spec, SCALE, CYCLES)
        finally:
            monkeypatch.setattr(driver, "_provider", None)
            driver.clear_workload_caches()
            release_segment(arena.segment)
            arena.cleanup()
        assert via_arena == direct


@pytest.fixture
def shm_on(clean_env):
    """Force the arena on: fork platforms auto-disable it (COW already
    shares the columns), and these tests exist to exercise the arena."""
    clean_env.setenv("REPRO_SHM", "1")
    return clean_env


class TestSweepLifecycle:
    def test_clean_pooled_sweep_creates_attaches_and_cleans(
            self, tmp_path, shm_on):
        log = str(tmp_path / "telemetry.jsonl")
        baseline = run_specs(_specs(2), SCALE, CYCLES, jobs=1)
        pooled = run_specs(_specs(2), SCALE, CYCLES, jobs=2, telemetry=log)
        assert pooled == baseline

        evs = _shm_events(log)
        assert len(evs["shm_create"]) == 1
        assert len(evs["shm_cleanup"]) == 1
        segment = evs["shm_create"][0]["segment"]
        assert evs["shm_cleanup"][0]["segment"] == segment
        assert evs["shm_create"][0]["bundles"] >= 1
        assert evs["shm_create"][0]["bytes"] > 0
        # Workers attached the same segment they were told about.
        assert evs["shm_attach"], "no worker ever attached the arena"
        assert {e["segment"] for e in evs["shm_attach"]} == {segment}
        # And the parent's unlink really removed it.
        assert not _segment_exists(segment)

    def test_auto_mode_follows_start_method(self, clean_env):
        """Unset REPRO_SHM: the arena exports only where workers do not
        inherit the parent's bundles (non-fork start methods)."""
        import multiprocessing
        expected = multiprocessing.get_start_method() != "fork"
        assert shm_enabled() is expected
        clean_env.setenv("REPRO_SHM", "1")
        assert shm_enabled() is True
        clean_env.setenv("REPRO_SHM", "0")
        assert shm_enabled() is False

    def test_disabled_by_env_knob(self, tmp_path, clean_env):
        clean_env.setenv("REPRO_SHM", "0")
        assert not shm_enabled()
        log = str(tmp_path / "telemetry.jsonl")
        baseline = run_specs(_specs(2), SCALE, CYCLES, jobs=1)
        pooled = run_specs(_specs(2), SCALE, CYCLES, jobs=2, telemetry=log)
        assert pooled == baseline
        evs = _shm_events(log)
        assert evs["shm_create"] == []
        assert evs["shm_attach"] == []
        assert evs["shm_cleanup"] == []

    def test_worker_crashes_never_leak_the_segment(self, tmp_path,
                                                   shm_on):
        """A crashed worker takes its mapping down with its process; the
        parent still owns — and unlinks — the one segment."""
        shm_on.setenv("REPRO_FAULTS", "crash@1")
        log = str(tmp_path / "telemetry.jsonl")
        got = run_specs(_specs(3), SCALE, CYCLES, jobs=2, retries=3,
                        backoff=0.0, telemetry=log)
        shm_on.delenv("REPRO_FAULTS")
        assert got == run_specs(_specs(3), SCALE, CYCLES, jobs=1)

        evs = _shm_events(log)
        assert len(evs["shm_create"]) == 1
        assert len(evs["shm_cleanup"]) == 1
        segment = evs["shm_create"][0]["segment"]
        assert not _segment_exists(segment)

    def test_failed_sweep_still_cleans_up(self, tmp_path, shm_on):
        """Even a sweep that ends in SweepError (retries exhausted) must
        release its arena on the way out."""
        shm_on.setenv("REPRO_FAULTS", "exec@0x99")
        log = str(tmp_path / "telemetry.jsonl")
        with pytest.raises(SweepError):
            run_specs(_specs(2), SCALE, CYCLES, jobs=2, retries=0,
                      backoff=0.0, telemetry=log)
        evs = _shm_events(log)
        assert len(evs["shm_create"]) == 1
        assert len(evs["shm_cleanup"]) == 1
        assert not _segment_exists(evs["shm_create"][0]["segment"])

    def test_checkpoint_resume_after_crash_rebuilds_arena(
            self, tmp_path, shm_on):
        """Crash mid-sweep, then resume: the resumed sweep exports a fresh
        arena for the unfinished specs (the dead one was unlinked), and
        the combined results match a fault-free serial baseline."""
        baseline = run_specs(_specs(3), SCALE, CYCLES, jobs=1)
        path = str(tmp_path / "sweep.ckpt")
        log = str(tmp_path / "telemetry.jsonl")

        # Two failed specs, so the resumed sweep still has enough pending
        # work to take the pooled (arena-exporting) path.
        shm_on.setenv("REPRO_FAULTS", "exec@1x99;exec@2x99")
        with pytest.raises(SweepError):
            run_specs(_specs(3), SCALE, CYCLES, jobs=2, retries=0,
                      backoff=0.0, checkpoint=path, telemetry=log)
        shm_on.delenv("REPRO_FAULTS")

        first = _shm_events(log)
        assert len(first["shm_create"]) == 1
        assert len(first["shm_cleanup"]) == 1
        dead_segment = first["shm_create"][0]["segment"]
        assert not _segment_exists(dead_segment)

        resumed = run_specs(_specs(3), SCALE, CYCLES, jobs=2,
                            checkpoint=path, telemetry=log)
        assert resumed == baseline

        evs = _shm_events(log)
        # One create/cleanup pair per sweep; the resume never reuses the
        # unlinked segment name.
        assert len(evs["shm_create"]) == 2
        assert len(evs["shm_cleanup"]) == 2
        second_segment = evs["shm_create"][1]["segment"]
        assert second_segment != dead_segment
        assert not _segment_exists(second_segment)

    def test_serial_sweeps_never_touch_shared_memory(self, tmp_path,
                                                     clean_env):
        log = str(tmp_path / "telemetry.jsonl")
        run_specs(_specs(2), SCALE, CYCLES, jobs=1, telemetry=log)
        evs = _shm_events(log)
        assert evs["shm_create"] == []
        assert evs["shm_cleanup"] == []
