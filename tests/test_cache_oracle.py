"""Oracle test for the O(1) LRU rewrite of :class:`SetAssocCache`.

PR 4 replaced the per-set ``(state dict, LRU list)`` pair with a single
insertion-ordered dict.  This suite pins the rewrite to the old semantics:
``NaiveCache`` below *is* the pre-change reference model (O(assoc)
``list.remove`` / ``list.pop(0)``), and both models are driven through
50k randomized access / insert / invalidate / touch / lookup / set_state
operations asserting identical per-op return values, identical stats
(hits / misses / evictions / writebacks), and identical final contents
*in LRU order*.
"""

import random

import pytest

from repro.simulator.cache import CLEAN, DIRTY, SetAssocCache


class NaiveCache:
    """Reference model: per-set state dict + explicit LRU list.

    This mirrors the pre-optimization implementation operation for
    operation; it is deliberately simple and slow.
    """

    def __init__(self, size_bytes: int, assoc: int, line_size: int = 64):
        n_sets = size_bytes // (assoc * line_size)
        self.assoc = assoc
        self.n_sets = n_sets
        self._state = [dict() for _ in range(n_sets)]
        self._order = [list() for _ in range(n_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def access(self, line, write):
        s = line % self.n_sets
        state, order = self._state[s], self._order[s]
        if line in state:
            self.hits += 1
            order.remove(line)
            order.append(line)
            if write:
                state[line] = DIRTY
            return True, None
        self.misses += 1
        victim = None
        if len(order) >= self.assoc:
            vline = order.pop(0)
            vstate = state.pop(vline)
            self.evictions += 1
            if vstate == DIRTY:
                self.writebacks += 1
            victim = (vline, vstate)
        state[line] = DIRTY if write else CLEAN
        order.append(line)
        return False, victim

    def lookup(self, line):
        return self._state[line % self.n_sets].get(line)

    def touch(self, line):
        s = line % self.n_sets
        order = self._order[s]
        if line in self._state[s]:
            order.remove(line)
            order.append(line)

    def set_state(self, line, new_state):
        s = line % self.n_sets
        if line not in self._state[s]:
            raise KeyError(line)
        self._state[s][line] = new_state

    def insert(self, line, state):
        s = line % self.n_sets
        st, order = self._state[s], self._order[s]
        if line in st:
            order.remove(line)
            order.append(line)
            st[line] = state
            return None
        victim = None
        if len(order) >= self.assoc:
            vline = order.pop(0)
            vstate = st.pop(vline)
            self.evictions += 1
            victim = (vline, vstate)
        st[line] = state
        order.append(line)
        return victim

    def invalidate(self, line):
        s = line % self.n_sets
        state = self._state[s].pop(line, None)
        if state is not None:
            self._order[s].remove(line)
        return state

    def contents(self):
        """Per-set (line, state) pairs in LRU-to-MRU order."""
        return [[(ln, self._state[s][ln]) for ln in order]
                for s, order in enumerate(self._order)]


def _optimized_contents(cache: SetAssocCache):
    return [list(s.items()) for s in cache._sets]


#: Operation mix: the access fast path dominates, with enough of the
#: fine-grained coherence primitives to shuffle LRU order between fills.
_OPS = (
    ("access", 60),
    ("insert", 10),
    ("invalidate", 10),
    ("touch", 8),
    ("lookup", 7),
    ("set_state", 5),
)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_oracle_50k_randomized_ops(seed):
    rng = random.Random(seed)
    opt = SetAssocCache("oracle", 4096, 4)   # 16 sets, 64-line capacity
    ref = NaiveCache(4096, 4)
    assert opt.n_sets == ref.n_sets == 16
    ops, weights = zip(*_OPS)
    n_lines = 128                            # 2x capacity: heavy conflict
    for step in range(50_000):
        op = rng.choices(ops, weights=weights)[0]
        line = rng.randrange(n_lines)
        if op == "access":
            write = rng.random() < 0.4
            assert opt.access(line, write) == ref.access(line, write), \
                f"step {step}: access({line}, {write}) diverged"
        elif op == "insert":
            state = rng.choice((CLEAN, DIRTY, 2, 3))  # incl. MESI-like
            assert opt.insert(line, state) == ref.insert(line, state), \
                f"step {step}: insert({line}, {state}) diverged"
        elif op == "invalidate":
            assert opt.invalidate(line) == ref.invalidate(line), \
                f"step {step}: invalidate({line}) diverged"
        elif op == "touch":
            opt.touch(line)
            ref.touch(line)
        elif op == "lookup":
            assert opt.lookup(line) == ref.lookup(line), \
                f"step {step}: lookup({line}) diverged"
        else:  # set_state: only legal on resident lines
            if ref.lookup(line) is None:
                with pytest.raises(KeyError):
                    opt.set_state(line, DIRTY)
            else:
                state = rng.choice((CLEAN, DIRTY, 2, 3))
                opt.set_state(line, state)
                ref.set_state(line, state)
        if step % 5000 == 0:
            assert line in opt or opt.lookup(line) is None
    # Identical event counters...
    assert opt.stats.hits == ref.hits
    assert opt.stats.misses == ref.misses
    assert opt.stats.evictions == ref.evictions
    assert opt.stats.writebacks == ref.writebacks
    # ...and identical final contents, including LRU order per set.
    assert _optimized_contents(opt) == ref.contents()


def test_oracle_odd_geometry():
    """Non-power-of-two set counts (scaled capacities) agree too."""
    rng = random.Random(99)
    opt = SetAssocCache("oracle", 26 * 64 * 2, 2)   # 26 sets, 2-way
    ref = NaiveCache(26 * 64 * 2, 2)
    assert opt.n_sets == ref.n_sets == 26
    for _ in range(20_000):
        line = rng.randrange(160)
        write = rng.random() < 0.5
        assert opt.access(line, write) == ref.access(line, write)
    assert _optimized_contents(opt) == ref.contents()
    assert (opt.stats.hits, opt.stats.misses, opt.stats.evictions,
            opt.stats.writebacks) == (ref.hits, ref.misses, ref.evictions,
                                      ref.writebacks)
