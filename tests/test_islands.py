"""Behavioral tests for hardware-islands machines: remote-traffic
counters per placement, pinned client assignment, the island-aware
model terms, the placement sweep + telemetry, and the islands figure."""

import pytest

from repro.core import telemetry as tel
from repro.core.experiment import Experiment
from repro.core.figures import islands as islands_figure
from repro.core.sweeps import islands_sweep
from repro.model.analytical import (
    Signature,
    StallPoint,
    cross_island_fraction,
    predict,
)
from repro.simulator.configs import fc_cmp
from repro.simulator.machine import Machine
from repro.simulator.topology import PLACEMENTS, IslandTopology
from repro.simulator.trace import TraceBuilder, Workload

SCALE = 0.02
TOPO = IslandTopology(n_sockets=2)


def make_trace(name, n_events=300, footprint_lines=2048, seed=1):
    import random
    rng = random.Random(seed)
    tb = TraceBuilder(name, ilp=2.0, branch_mpki=2.0, ilp_inorder=1.2)
    rid = tb.register_code("mod", 0x10_0000, 32)
    base = 0x4000_0000
    for i in range(n_events):
        addr = base + rng.randrange(footprint_lines) * 64
        tb.event(30, addr, 1 if i % 5 == 0 else 0, rid)
    return tb.build()


def run_placement(placement, n_sockets=2):
    topo = IslandTopology(n_sockets=n_sockets) if n_sockets > 1 else None
    m = Machine(fc_cmp(n_cores=4, l2_nominal_mb=1.0, scale=1.0,
                       topology=topo))
    w = Workload("synthetic",
                 [make_trace(f"c{i}", seed=i) for i in range(4)],
                 kind="dss")
    return m.run(w, measure_cycles=30_000, placement=placement)


class TestRemoteCounters:
    def test_single_socket_has_no_remote_traffic(self):
        r = run_placement("shared-everything", n_sockets=1)
        assert r.hier_stats.remote_accesses == 0
        assert r.hier_stats.remote_l1x == 0
        assert r.hier_stats.remote_extra_cycles == 0

    def test_shared_everything_pays_remote_traffic(self):
        r = run_placement("shared-everything")
        assert r.hier_stats.remote_accesses > 0
        assert r.hier_stats.remote_extra_cycles > 0

    def test_partitioned_data_is_home_local(self):
        r = run_placement("island-partitioned")
        # Pinned clients + per-island line tags: every data access is
        # home-local, so no cross-island dirty-line transfers either.
        assert r.hier_stats.remote_l1x == 0
        shared = run_placement("shared-everything")
        assert (r.hier_stats.remote_accesses
                < shared.hier_stats.remote_accesses)

    def test_remote_latency_costs_throughput(self):
        base = run_placement("shared-everything", n_sockets=1)
        isl = run_placement("shared-everything")
        assert isl.ipc < base.ipc


class TestPinnedAssignment:
    def test_partitioned_alternates_islands(self):
        m = Machine(fc_cmp(n_cores=4, topology=TOPO))
        traces = [make_trace(f"c{i}", seed=i) for i in range(4)]
        slots = m._assign(traces, "island-partitioned")
        # Client i is pinned to island i % 2 and fills that island's
        # cores first: cores {0,1} are island 0, {2,3} island 1.
        assert slots[0][0] == [traces[0]]
        assert slots[2][0] == [traces[1]]
        assert slots[1][0] == [traces[2]]
        assert slots[3][0] == [traces[3]]

    def test_partitioned_queues_within_island(self):
        m = Machine(fc_cmp(n_cores=4, topology=TOPO))
        traces = [make_trace(f"c{i}", seed=i) for i in range(6)]
        slots = m._assign(traces, "island-partitioned")
        # Clients 4 and 5 wrap onto the first core of their island.
        assert slots[0][0] == [traces[0], traces[4]]
        assert slots[2][0] == [traces[1], traces[5]]


def synthetic_signature(regime="saturated"):
    point = StallPoint(
        l2_nominal_mb=1.0, l2_fraction=0.2, mem_fraction=0.05,
        alpha_i=0.01, alpha_l2=0.8, alpha_mem=0.8, resid_cpi=0.1,
        queue_wait=1.0)
    return Signature(
        kind="oltp", camp="fc", regime=regime, n_contexts=1,
        comp_cpi=0.5, other_cpi=0.1, i_mem_cpi=0.05, apki=300.0,
        ipki_port=10.0, instructions=10_000, n_clients=4,
        points=(point,))


class TestIslandModel:
    def test_cross_island_fraction(self):
        assert cross_island_fraction(TOPO, "island-partitioned") == 0.0
        assert cross_island_fraction(TOPO, "shared-everything") == 0.5
        assert cross_island_fraction(
            IslandTopology(n_sockets=4), "hybrid") == 0.75

    def test_placement_orders_predictions(self):
        sig = synthetic_signature()
        plain = predict(sig, fc_cmp(n_cores=4, l2_nominal_mb=1.0))
        config = fc_cmp(n_cores=4, l2_nominal_mb=1.0, topology=TOPO)
        by_placement = {p: predict(sig, config, placement=p)
                        for p in PLACEMENTS}
        # Interleaved homes pay remote latency; partitioned does not.
        assert (by_placement["island-partitioned"].ipc
                > by_placement["shared-everything"].ipc)
        assert plain.ipc >= by_placement["shared-everything"].ipc

    def test_partitioned_latency_matches_single_socket(self):
        sig = synthetic_signature()
        plain = predict(sig, fc_cmp(n_cores=4, l2_nominal_mb=1.0))
        part = predict(sig, fc_cmp(n_cores=4, l2_nominal_mb=1.0,
                                   topology=TOPO),
                       placement="island-partitioned")
        assert part.l2_latency == plain.l2_latency

    def test_unsaturated_pays_remote_latency(self):
        sig = synthetic_signature("unsaturated")
        plain = predict(sig, fc_cmp(n_cores=4, l2_nominal_mb=1.0))
        shared = predict(sig, fc_cmp(n_cores=4, l2_nominal_mb=1.0,
                                     topology=TOPO))
        assert shared.response_cycles > plain.response_cycles

    def test_placement_requires_islands(self):
        with pytest.raises(ValueError):
            predict(synthetic_signature(), fc_cmp(n_cores=4),
                    placement="hybrid")


@pytest.fixture(scope="module")
def exp():
    return Experiment(scale=SCALE, measure_cycles=20_000, use_cache=False)


class TestIslandsSweep:
    def test_sweep_points_and_telemetry(self, exp, tmp_path):
        log = tmp_path / "telemetry.jsonl"
        old_recorder = exp.telemetry
        exp.telemetry = tel.as_recorder(str(log))
        try:
            points = islands_sweep(
                exp, sockets=2, kinds=("oltp",), camps=("fc",),
                n_cores=4, l2_nominal_mb=2.0)
        finally:
            exp.telemetry = old_recorder
        assert [p.placement for p in points] == list(PLACEMENTS)
        for p in points:
            assert p.sockets == 2
            assert 0.0 < p.rel_ipc <= 1.5
            assert 0.0 <= p.remote_fraction <= 1.0
        by_placement = {p.placement: p for p in points}
        assert by_placement["island-partitioned"].result.hier_stats \
            .remote_l1x == 0

        events = tel.load_events(str(log))
        island_events = [e for e in events if e.get("ev") == "island_point"]
        assert len(island_events) == len(points)
        summary = tel.summarize_islands(events)
        assert len(summary["points"]) == len(points)
        text = tel.format_islands_summary(summary)
        assert "island-partitioned" in text

    def test_figure_smoke(self, exp):
        text = islands_figure(exp, sockets=2, kinds=("oltp",))
        assert "Hardware islands" in text
        assert "island-partitioned" in text
        assert "retained" in text
