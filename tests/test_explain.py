"""Tests for plan tree introspection (children / explain)."""

from repro.db import Database, Schema
from repro.db.exec import (
    AggSpec,
    Filter,
    HashAggregate,
    HashJoin,
    MergeJoin,
    NestedLoopJoin,
    SeqScan,
    Sort,
    StreamAggregate,
)
from repro.db.types import int64


def make_ctx_and_heaps():
    db = Database()
    a = db.catalog.create_table(Schema("a", [int64("k"), int64("v")]))
    b = db.catalog.create_table(Schema("b", [int64("k"), int64("w")]))
    for i in range(10):
        a.append((i, i))
        b.append((i, i * 2))
    return db.session("c", traced=False).ctx, a, b


class TestChildren:
    def test_leaf_has_no_children(self):
        ctx, a, _ = make_ctx_and_heaps()
        assert SeqScan(ctx, a).children == []

    def test_unary_chain(self):
        ctx, a, _ = make_ctx_and_heaps()
        scan = SeqScan(ctx, a)
        filt = Filter(ctx, scan, lambda r: True)
        sort = Sort(ctx, filt, key=lambda r: r[0])
        assert sort.children == [filt]
        assert filt.children == [scan]

    def test_hash_join_children_order(self):
        ctx, a, b = make_ctx_and_heaps()
        sa, sb = SeqScan(ctx, a), SeqScan(ctx, b)
        j = HashJoin(ctx, sa, sb, build_key=lambda r: r[0],
                     probe_key=lambda r: r[0])
        assert j.children == [sa, sb]  # build first, then probe

    def test_merge_join_children_order(self):
        ctx, a, b = make_ctx_and_heaps()
        sa, sb = SeqScan(ctx, a), SeqScan(ctx, b)
        j = MergeJoin(ctx, sa, sb, left_key=lambda r: r[0],
                      right_key=lambda r: r[0])
        assert j.children == [sa, sb]

    def test_nested_loop_children(self):
        ctx, a, b = make_ctx_and_heaps()
        sa, sb = SeqScan(ctx, a), SeqScan(ctx, b)
        j = NestedLoopJoin(ctx, sa, sb, lambda o, i: True)
        assert j.children == [sa, sb]


class TestExplain:
    def test_tree_rendering(self):
        ctx, a, b = make_ctx_and_heaps()
        plan = HashAggregate(
            ctx,
            HashJoin(
                ctx,
                Filter(ctx, SeqScan(ctx, a), lambda r: True),
                SeqScan(ctx, b),
                build_key=lambda r: r[0], probe_key=lambda r: r[0],
            ),
            lambda r: r[0],
            [AggSpec("count")],
        )
        text = plan.explain()
        lines = text.splitlines()
        assert lines[0].startswith("HashAggregate")
        assert lines[1] == "  " + "HashJoin(join(a,b))"
        assert lines[2].startswith("    Filter")
        assert lines[3].startswith("      SeqScan")
        assert lines[4] == "    SeqScan(b)"

    def test_explain_matches_execution_shape(self):
        """Every operator reachable in explain() actually participates."""
        ctx, a, _ = make_ctx_and_heaps()
        agg = StreamAggregate(ctx, Filter(ctx, SeqScan(ctx, a),
                                          lambda r: r[0] % 2 == 0),
                              [AggSpec("count")])
        assert agg.execute() == [(5,)]
        assert agg.explain().count("\n") == 2  # 3 nodes
