"""Property test: the set-associative cache against a reference LRU model."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.cache import SetAssocCache


class ReferenceLRU:
    """Oblivious per-set LRU model built from dictionaries."""

    def __init__(self, n_sets: int, assoc: int):
        self.n_sets = n_sets
        self.assoc = assoc
        self.sets = [OrderedDict() for _ in range(n_sets)]

    def access(self, line: int, write: bool):
        s = self.sets[line % self.n_sets]
        if line in s:
            s.move_to_end(line)
            if write:
                s[line] = 1
            return True
        victim = None
        if len(s) >= self.assoc:
            victim = s.popitem(last=False)
        s[line] = 1 if write else 0
        return False, victim


@settings(max_examples=60, deadline=None)
@given(
    st.integers(1, 4).map(lambda k: 2 ** k),     # assoc
    st.integers(2, 16),                          # sets
    st.lists(st.tuples(st.integers(0, 200), st.booleans()),
             max_size=400),
)
def test_cache_matches_reference(assoc, n_sets, accesses):
    cache = SetAssocCache("T", n_sets * assoc * 64, assoc)
    ref = ReferenceLRU(n_sets, assoc)
    hits = misses = 0
    for line, write in accesses:
        got_hit, _ = cache.access(line, write)
        ref_out = ref.access(line, write)
        ref_hit = ref_out is True
        assert got_hit == ref_hit, f"divergence on line {line}"
        if got_hit:
            hits += 1
        else:
            misses += 1
    assert cache.stats.hits == hits
    assert cache.stats.misses == misses
    # Residency agrees exactly.
    for s_idx, s in enumerate(ref.sets):
        for line, dirty in s.items():
            assert line in cache
            assert cache.lookup(line) == dirty
    assert cache.resident_lines == sum(len(s) for s in ref.sets)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 500), st.booleans()),
                min_size=1, max_size=300))
def test_writeback_count_matches_dirty_evictions(accesses):
    cache = SetAssocCache("T", 4 * 2 * 64, 2)  # tiny: 4 sets x 2 ways
    dirty_evicted = 0
    for line, write in accesses:
        _, victim = cache.access(line, write)
        if victim is not None and victim[1] == 1:
            dirty_evicted += 1
    assert cache.stats.writebacks == dirty_evicted
    assert cache.stats.evictions >= dirty_evicted
