"""Tests for the catalog and the Database/Session facade."""

import pytest

from repro.db import Database, Schema
from repro.db.page import PageLayout
from repro.db.types import int64


def schema(name="t"):
    return Schema(name, [int64("id"), int64("v")])


class TestCatalog:
    def test_create_and_lookup(self):
        db = Database()
        heap = db.catalog.create_table(schema())
        assert db.catalog.table("t") is heap
        assert "t" in db.catalog.table_names

    def test_duplicate_table_rejected(self):
        db = Database()
        db.catalog.create_table(schema())
        with pytest.raises(ValueError):
            db.catalog.create_table(schema())

    def test_missing_table(self):
        with pytest.raises(KeyError):
            Database().catalog.table("nope")

    def test_btree_index_populated(self):
        db = Database()
        heap = db.catalog.create_table(schema())
        for i in range(50):
            heap.append((i, i * 2))
        idx = db.catalog.create_btree_index("t_pk", "t", key=lambda r: r[0])
        assert idx.search(17) == 17  # rid == insertion order
        assert db.catalog.index("t_pk") is idx
        assert db.catalog.indexed_table("t_pk") is heap

    def test_hash_index_populated(self):
        db = Database()
        heap = db.catalog.create_table(schema())
        for i in range(20):
            heap.append((i % 5, i))
        idx = db.catalog.create_hash_index("t_h", "t", key=lambda r: r[0])
        assert len(idx.search(3)) == 4

    def test_duplicate_index_rejected(self):
        db = Database()
        db.catalog.create_table(schema())
        db.catalog.create_btree_index("i", "t", key=lambda r: r[0])
        with pytest.raises(ValueError):
            db.catalog.create_hash_index("i", "t", key=lambda r: r[0])

    def test_unpopulated_index(self):
        db = Database()
        heap = db.catalog.create_table(schema())
        heap.append((1, 1))
        idx = db.catalog.create_btree_index("i", "t", key=lambda r: r[0],
                                            populate=False)
        assert idx.n_entries == 0

    def test_total_data_bytes(self):
        db = Database()
        a = db.catalog.create_table(schema("a"))
        b = db.catalog.create_table(
            schema("b"), layout=PageLayout.PAX,
            n_virtual_rows=10_000, row_source=lambda r: (r, r))
        a.append((1, 1))
        assert (db.catalog.total_data_bytes()
                == a.footprint_bytes + b.footprint_bytes)


class TestSessions:
    def test_traced_session_produces_trace(self):
        db = Database()
        sess = db.session("c0", ilp=2.0)
        sess.tracer.compute(10)
        sess.tracer.data(0x1234)
        trace = sess.finish()
        assert trace.name == "c0"
        assert trace.ilp == 2.0

    def test_untraced_session_cannot_finish(self):
        db = Database()
        sess = db.session("c0", traced=False)
        with pytest.raises(TypeError):
            sess.finish()

    def test_session_transactions(self):
        db = Database()
        sess = db.session("c0", traced=False)
        txn = sess.begin()
        sess.commit(txn)
        assert db.txns.committed == 1
        txn2 = sess.begin()
        sess.abort(txn2)
        assert db.txns.aborted == 1

    def test_scratch_reused_across_queries(self):
        db = Database()
        sess = db.session("c0", traced=False)
        a = sess.ctx.scratch("sort", 1024)
        b = sess.ctx.scratch("sort", 512)
        assert a is b
        c = sess.ctx.scratch("sort", 4096)  # larger: reallocates
        assert c is not a

    def test_distinct_clients_distinct_scratch(self):
        db = Database()
        a = db.session("c0", traced=False).ctx.scratch("sort", 1024)
        b = db.session("c1", traced=False).ctx.scratch("sort", 1024)
        assert a.base != b.base
