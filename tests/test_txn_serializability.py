"""Conflict-serializability oracle over executed contention schedules.

Every schedule either CC executor commits must have an acyclic conflict
graph — that is the correctness bar for the whole contention study: the
logical executors interleave operations from many clients, and a cycle
would mean the committed state need not equal *any* serial order's.

The oracle itself (``conflict_edges`` / ``find_conflict_cycle``) is
exercised directly on handcrafted schedules first, so a pass on the real
executors means "no cycles", not "the oracle is blind".
"""

import pytest

from repro.workloads.contention import (
    SkewSpec,
    TxnRecord,
    conflict_edges,
    find_conflict_cycle,
    is_conflict_serializable,
    simulate_contention,
)

SCALE = 0.05
THETAS = (0.0, 0.6, 1.2)
SEEDS = (42, 7)


def _txn(ts, ops):
    """A TxnRecord from ``(seq, resource, write)`` triples."""
    return TxnRecord(ts=ts, client=0, kind="t", ops=list(ops),
                     commit_seq=max((seq for seq, _, _ in ops), default=0))


# --------------------------------------------------------------------- #
# The oracle on handcrafted schedules                                    #
# --------------------------------------------------------------------- #

def test_oracle_empty_schedule():
    assert conflict_edges([]) == set()
    assert find_conflict_cycle([]) is None
    assert is_conflict_serializable([])


def test_oracle_read_read_is_no_conflict():
    sched = [_txn(1, [(1, "a", False)]), _txn(2, [(2, "a", False)])]
    assert conflict_edges(sched) == set()
    assert is_conflict_serializable(sched)


@pytest.mark.parametrize("w1, w2", [(True, False), (False, True),
                                    (True, True)])
def test_oracle_edge_direction(w1, w2):
    """Any pair with >= 1 write conflicts, ordered by sequence number."""
    sched = [_txn(1, [(1, "a", w1)]), _txn(2, [(2, "a", w2)])]
    assert conflict_edges(sched) == {(1, 2)}
    assert is_conflict_serializable(sched)


def test_oracle_detects_two_txn_cycle():
    # T1 writes a before T2, but T2 writes b before T1: a cycle.
    sched = [
        _txn(1, [(1, "a", True), (4, "b", True)]),
        _txn(2, [(2, "a", True), (3, "b", True)]),
    ]
    assert conflict_edges(sched) == {(1, 2), (2, 1)}
    assert not is_conflict_serializable(sched)
    cycle = find_conflict_cycle(sched)
    assert cycle is not None
    assert set(cycle) >= {1, 2}


def test_oracle_detects_three_txn_cycle():
    # 1 -> 2 on a, 2 -> 3 on b, 3 -> 1 on c.
    sched = [
        _txn(1, [(1, "a", True), (6, "c", True)]),
        _txn(2, [(2, "a", True), (3, "b", True)]),
        _txn(3, [(4, "b", True), (5, "c", True)]),
    ]
    assert conflict_edges(sched) == {(1, 2), (2, 3), (3, 1)}
    assert not is_conflict_serializable(sched)
    assert set(find_conflict_cycle(sched)) >= {1, 2, 3}


def test_oracle_acyclic_chain_passes():
    sched = [
        _txn(1, [(1, "a", True)]),
        _txn(2, [(2, "a", False), (3, "b", True)]),
        _txn(3, [(4, "b", False)]),
    ]
    assert conflict_edges(sched) == {(1, 2), (2, 3)}
    assert is_conflict_serializable(sched)
    assert find_conflict_cycle(sched) is None


# --------------------------------------------------------------------- #
# The executors against the oracle                                       #
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("cc_mode", ["2pl", "partitioned"])
@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("seed", SEEDS)
def test_executed_schedules_are_serializable(cc_mode, theta, seed):
    result = simulate_contention(scale=SCALE, skew=SkewSpec(theta=theta),
                                 cc_mode=cc_mode, seed=seed)
    assert result.is_serializable()
    assert find_conflict_cycle(result.schedule) is None
    # Every submitted transaction eventually commits exactly once.
    assert result.commits == len(result.schedule)
    assert result.commits == result.n_clients * result.txns_per_client
    assert sorted(t.ts for t in result.schedule) == list(range(result.commits))


@pytest.mark.parametrize("cc_mode", ["2pl", "partitioned"])
def test_hotspot_schedules_are_serializable(cc_mode):
    """The worst case the knobs can express stays serializable."""
    skew = SkewSpec(theta=1.2, hot_warehouses=1, cross_rate=0.5)
    result = simulate_contention(scale=SCALE, skew=skew, cc_mode=cc_mode)
    assert result.is_serializable()
    assert result.commits == result.n_clients * result.txns_per_client


def test_schedule_ops_are_well_formed():
    """Oracle inputs: strictly increasing unique seqs, commit_seq last."""
    result = simulate_contention(scale=SCALE, skew=SkewSpec(theta=0.9),
                                 cc_mode="2pl")
    seen = set()
    for txn in result.schedule:
        seqs = [seq for seq, _, _ in txn.ops]
        assert seqs == sorted(seqs)
        assert txn.commit_seq > max(seqs)
        assert not (set(seqs) & seen)
        seen.update(seqs)


def test_partitioned_schedule_is_timestamp_ordered():
    """The deterministic mode commits in global timestamp order."""
    result = simulate_contention(scale=SCALE, skew=SkewSpec(theta=0.9),
                                 cc_mode="partitioned")
    commit_order = [t.ts for t in
                    sorted(result.schedule, key=lambda t: t.commit_seq)]
    assert commit_order == sorted(commit_order)
