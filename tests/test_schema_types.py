"""Tests for column types, schemas, and layout arithmetic."""

import pytest

from repro.db.schema import Schema
from repro.db.types import Column, ColumnType, char, date, float64, int32, int64


class TestTypes:
    def test_widths(self):
        assert int32("a").width == 4
        assert int64("a").width == 8
        assert float64("a").width == 8
        assert date("a").width == 4
        assert char("a", 17).width == 17

    def test_char_needs_length(self):
        with pytest.raises(ValueError):
            Column("a", ColumnType.CHAR).width


class TestSchema:
    def make(self):
        return Schema("t", [int64("id"), int32("x"), char("s", 10),
                            float64("v")])

    def test_row_width(self):
        assert self.make().row_width == 8 + 4 + 10 + 8

    def test_offsets_cumulative(self):
        s = self.make()
        assert [s.column_offset(i) for i in range(4)] == [0, 8, 12, 22]

    def test_column_index(self):
        s = self.make()
        assert s.column_index("v") == 3
        with pytest.raises(KeyError):
            s.column_index("nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema("t", [int64("a"), int32("a")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Schema("t", [])

    def test_project_preserves_order_and_widths(self):
        s = self.make()
        p = s.project(["v", "id"])
        assert [c.name for c in p.columns] == ["v", "id"]
        assert p.row_width == 16

    def test_column_width(self):
        s = self.make()
        assert s.column_width(2) == 10
