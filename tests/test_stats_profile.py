"""Tests for measurement statistics and workload profiling."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    PairedDelta,
    paired_delta,
    seeds_for_target,
    summarize,
    t_quantile_975,
)
from repro.workloads.profile import (
    format_profile,
    profile_trace,
    profile_workload,
)
from repro.simulator.trace import (
    FLAG_DEPENDENT,
    FLAG_WRITE,
    TraceBuilder,
    Workload,
)


class TestSummarize:
    def test_single_sample(self):
        s = summarize([5.0])
        assert s.mean == 5.0 and s.half_width == 0.0 and s.n == 1

    def test_constant_samples_zero_width(self):
        s = summarize([2.0, 2.0, 2.0])
        assert s.half_width == 0.0

    def test_known_interval(self):
        # mean 10, sd 1, n=4 -> half = 3.182 * 1/2.
        s = summarize([9.0, 9.666666, 10.333333, 11.0])
        assert s.mean == pytest.approx(10.0, abs=1e-4)
        assert s.half_width == pytest.approx(
            3.182 * math.sqrt(sum((x - 10) ** 2 for x in
                                  [9.0, 9.666666, 10.333333, 11.0]) / 3 / 4),
            rel=1e-3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_relative_error(self):
        s = summarize([99.0, 101.0])
        assert 0 < s.relative_error < 0.2
        assert s.low < 100 < s.high

    def test_t_quantiles_decrease(self):
        qs = [t_quantile_975(d) for d in range(1, 40)]
        assert qs == sorted(qs, reverse=True)
        assert qs[-1] == pytest.approx(1.96, abs=0.01)

    def test_t_quantile_validates(self):
        with pytest.raises(ValueError):
            t_quantile_975(0)


class TestPairedDelta:
    def test_consistent_improvement_significant(self):
        a = [10.0, 11.0, 9.5, 10.5]
        b = [12.0, 13.1, 11.4, 12.6]
        pd = paired_delta(a, b)
        assert isinstance(pd, PairedDelta)
        assert pd.significant
        assert pd.delta.mean == pytest.approx(2.025, abs=1e-9)
        assert pd.ratio_mean > 1.1

    def test_noise_not_significant(self):
        a = [10.0, 11.0, 9.5, 10.5]
        b = [10.4, 10.6, 9.9, 10.1]
        assert not paired_delta(a, b).significant

    def test_pairing_removes_between_seed_variance(self):
        """A tiny consistent effect is significant when paired even though
        the raw populations overlap heavily."""
        base = [10.0, 20.0, 30.0, 40.0, 50.0]
        improved = [x * 1.02 for x in base]
        pd = paired_delta(base, improved)
        assert pd.significant
        # Unpaired: the difference-of-means CI would dwarf the 2% effect.
        spread = summarize(base).half_width
        assert spread > pd.delta.mean

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_delta([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            paired_delta([], [])


class TestSeedsForTarget:
    def test_already_tight(self):
        assert seeds_for_target([10.0, 10.01, 9.99], 0.05) == 3

    def test_scales_quadratically(self):
        samples = [8.0, 12.0, 9.0, 11.0]
        n1 = seeds_for_target(samples, 0.10)
        n2 = seeds_for_target(samples, 0.05)
        assert n2 >= 3 * n1 // 1  # ~4x for half the error

    def test_validates(self):
        with pytest.raises(ValueError):
            seeds_for_target([1.0, 2.0], 0)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=30))
def test_summary_bounds_property(samples):
    s = summarize(samples)
    assert s.low <= s.mean <= s.high
    assert min(samples) - 1e-6 <= s.mean <= max(samples) + 1e-6


def _trace(name, events):
    tb = TraceBuilder(name, ilp=2.0)
    r0 = tb.register_code("exec.seqscan", 0x1000, 8)
    r1 = tb.register_code("exec.sort", 0x9000, 8)
    for i, (icount, addr, flags) in enumerate(events):
        tb.event(icount, addr, flags, r0 if i % 2 == 0 else r1)
    return tb.build()


class TestProfiles:
    def test_trace_profile_fields(self):
        tr = _trace("t", [
            (10, 0x100, FLAG_DEPENDENT),
            (30, 0x200, FLAG_WRITE),
            (20, 0x100, 0),
            (40, 0x300, FLAG_DEPENDENT | FLAG_WRITE),
        ])
        p = profile_trace(tr)
        assert p.references == 4
        assert p.instructions == 100
        assert p.distinct_lines == 3
        assert p.dependent == 0.5 and p.write == 0.5
        assert p.instructions_per_reference == 25.0
        assert set(p.module_instructions) == {"exec.seqscan", "exec.sort"}
        assert sum(p.module_instructions.values()) == 100

    def test_workload_sharing(self):
        shared = [(10, 0x100, 0), (10, 0x200, 0)]
        t1 = _trace("a", shared + [(10, 0x1000, 0)])
        t2 = _trace("b", shared + [(10, 0x2000, 0)])
        wp = profile_workload(Workload("w", [t1, t2]))
        assert wp.union_lines == 4
        assert wp.shared_lines == 2
        assert wp.sharing_fraction == 0.5

    def test_format_profile_renders(self):
        t1 = _trace("a", [(10, 0x100, 0)] * 4)
        text = format_profile(profile_workload(Workload("w", [t1])))
        assert "union data footprint" in text
        assert "exec.seqscan" in text

    def test_real_workload_shapes(self):
        """OLTP profiles as pointer-chasing with a large module mix."""
        from repro.workloads.tpcc import TpccDatabase
        tr = TpccDatabase(scale=0.05, seed=3).run_client(0, 8)
        p = profile_trace(tr)
        assert p.dependent > 0.35
        assert len(p.module_instructions) >= 6
        assert "storage.btree" in p.module_instructions
