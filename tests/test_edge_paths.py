"""Edge-path tests: behaviours only exercised under unusual conditions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, Schema
from repro.db.buffer import BufferPool
from repro.db.exec import IndexScan, SeqScan
from repro.db.heap import HeapFile
from repro.db.types import int64
from repro.simulator.addresses import AddressSpace


class TestBufferClockCompaction:
    def test_clock_ring_stays_bounded_under_churn(self):
        """Thousands of install/evict cycles must not grow the clock ring
        unboundedly (the compaction path)."""
        space = AddressSpace()
        heap = HeapFile(space, Schema("t", [int64("x")]), "t",
                        n_virtual_rows=10_000_000, row_source=lambda r: (r,))
        pool = BufferPool(space, capacity_pages=8)
        for p in range(2000):
            pool.fetch(heap, p)
        assert pool.n_resident <= 8
        assert len(pool._clock) <= 4 * 8 + 8  # compaction bound
        assert pool.stats.evictions >= 1990


class TestIndexScanVariants:
    def make(self):
        db = Database()
        heap = db.catalog.create_table(Schema("t", [int64("k"), int64("v")]))
        for i in range(100):
            heap.append((i, i * 2))
        idx = db.catalog.create_btree_index("pk", "t", key=lambda r: r[0])
        return db.session("c", traced=False).ctx, heap, idx

    def test_keys_only_scan(self):
        ctx, heap, idx = self.make()
        out = IndexScan(ctx, heap, idx, 10, 15, fetch_rows=False).execute()
        assert out == [(k, k) for k in range(10, 15)]  # (key, rid)

    def test_fetching_scan_returns_rows(self):
        ctx, heap, idx = self.make()
        out = IndexScan(ctx, heap, idx, 10, 12).execute()
        assert out == [(10, 20), (11, 22)]

    def test_empty_range(self):
        ctx, heap, idx = self.make()
        assert IndexScan(ctx, heap, idx, 500, 600).execute() == []


class TestSeqScanEdges:
    def test_scan_empty_table(self):
        db = Database()
        heap = db.catalog.create_table(Schema("e", [int64("x")]))
        ctx = db.session("c", traced=False).ctx
        assert SeqScan(ctx, heap).execute() == []

    def test_scan_range_clamped_to_table(self):
        db = Database()
        heap = db.catalog.create_table(Schema("t", [int64("x")]))
        for i in range(10):
            heap.append((i,))
        ctx = db.session("c", traced=False).ctx
        assert len(SeqScan(ctx, heap, start=5, stop=500).execute()) == 5


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 500), st.integers(-100, 100)),
                max_size=60))
def test_virtual_overlay_property(updates):
    """Property: a virtual heap with overlay updates equals a dict view
    over (generator, updates)."""
    heap = HeapFile(AddressSpace(), Schema("t", [int64("r"), int64("v")]),
                    "t", n_virtual_rows=501, row_source=lambda r: (r, r))
    reference = {}
    for rid, val in updates:
        heap.set_field(rid, 1, val)
        reference[rid] = val
    for rid in range(0, 501, 13):
        expect = (rid, reference.get(rid, rid))
        assert heap.get(rid) == expect
