"""Tests for the SMP hierarchy's instruction path and stats plumbing."""

from repro.simulator.coherence import PrivateL2Hierarchy, SHARED
from repro.simulator.hierarchy import L1, L2, MEM, HierarchyParams


def make_smp(**kw):
    params = HierarchyParams(
        n_cores=2, l1i_kb=16, l2_mb=0.25, l2_nominal_mb=4.0,
        l2_latency=12, **kw,
    )
    return PrivateL2Hierarchy(params)


CODE = 0x0200_0000


class TestSmpInstrPath:
    def test_small_footprint_cheap(self):
        h = make_smp()
        total = 0
        for _ in range(50):
            exposed, _ = h.instr_block(0, CODE, 64, 2, True, 0.0)
            total += exposed
        assert total <= 50 * h.params.jump_bubble_cycles

    def test_thrashing_jump_fetches_into_local_l2(self):
        h = make_smp()
        regions = [(CODE + i * 0x10000, 256) for i in range(8)]
        levels = set()
        for i in range(100):
            base, lines = regions[i % len(regions)]
            _, level = h.instr_block(0, base, lines, 2, True, 0.0)
            levels.add(level)
        # First fetches go to memory, refetches hit the private L2.
        assert MEM in levels and L2 in levels
        # Code lines are installed read-shared, never owned.
        state = h.l2_caches[0].lookup(CODE >> 6)
        assert state in (None, SHARED)

    def test_instr_blocks_counted(self):
        h = make_smp()
        for _ in range(7):
            h.instr_block(1, CODE, 8, 1, False, 0.0)
        assert h.stats.instr_blocks == 7

    def test_stream_buffer_toggle(self):
        totals = {}
        for label, isb in (("on", True), ("off", False)):
            h = make_smp(stream_buffers=isb)
            regions = [(CODE + i * 0x10000, 256) for i in range(8)]
            t = 0
            for i in range(150):
                base, lines = regions[i % len(regions)]
                e, _ = h.instr_block(0, base, lines, 8, i % 5 == 0, 0.0)
                t += e
            totals[label] = t
        assert totals["off"] > totals["on"]

    def test_reset_stats_preserves_cache_state(self):
        h = make_smp()
        h.data_access(0, 0x4000_0000, False, 0.0)
        h.reset_stats()
        assert h.stats.data_accesses == 0
        # State survives: the line still hits in L1.
        _, level = h.data_access(0, 0x4000_0000, False, 0.0)
        assert level == L1
