"""Tests for the staged-execution extension."""

import pytest

from repro.db.engine import Database
from repro.staged import (
    BatchBuffer,
    BufferRing,
    CohortScheduler,
    Router,
)
from repro.simulator.addresses import AddressSpace
from repro.simulator.trace import FLAG_WRITE
from repro.workloads.tpch import TpchDatabase


class TestBatchBuffer:
    def test_slot_addresses_are_contiguous(self):
        buf = BatchBuffer(AddressSpace(), "b", 16)
        assert buf.slot_addr(1) - buf.slot_addr(0) == 32

    def test_slot_bounds(self):
        buf = BatchBuffer(AddressSpace(), "b", 4)
        with pytest.raises(IndexError):
            buf.slot_addr(4)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            BatchBuffer(AddressSpace(), "b", 0)

    def test_ring_rotates(self):
        ring = BufferRing(AddressSpace(), "r", 8, depth=2)
        a = ring.acquire()
        b = ring.acquire()
        c = ring.acquire()
        assert a is not b
        assert c is a  # depth-2 double buffering


class TestScheduler:
    def _tpch(self):
        return TpchDatabase(scale=0.02, seed=3)

    def _iterator_q1(self, tpch, lo, hi, cutoff):
        """Reference result via the plain operator pipeline."""
        sess = tpch.db.session("ref", traced=False)
        from repro.db.exec import AggSpec, Filter, HashAggregate, SeqScan

        scan = SeqScan(sess.ctx, tpch.lineitem, start=lo, stop=hi)
        filt = Filter(sess.ctx, scan, lambda r: r[9] <= cutoff)
        agg = HashAggregate(
            sess.ctx, filt, lambda r: (r[7], r[8]),
            [AggSpec("sum", lambda r: r[4] * (1 - r[5]), "s")],
        )
        return {(row[0], row[1]): row[2] for row in agg.execute()}

    def test_cohort_results_match_iterator_model(self):
        tpch = self._tpch()
        router = Router(tpch.db)
        producer = tpch.db.session("staged-p")
        out = router.q1_pipeline(tpch, producer, None, 0, 2000, cutoff=1200)
        expected = self._iterator_q1(tpch, 0, 2000, 1200)
        got = {k: v for k, v in out.results}
        assert got.keys() == expected.keys()
        for k in expected:
            assert got[k] == pytest.approx(expected[k])

    def test_spread_results_match_cohort(self):
        tpch = self._tpch()
        router = Router(tpch.db)
        cohort = router.q1_pipeline(
            tpch, tpch.db.session("p1"), None, 0, 1500, cutoff=1000)
        spread = router.q1_pipeline(
            tpch, tpch.db.session("p2"), tpch.db.session("c2"),
            0, 1500, cutoff=1000)
        assert dict(cohort.results) == dict(spread.results)

    def test_cohort_single_trace_spread_two(self):
        tpch = self._tpch()
        router = Router(tpch.db)
        cohort = router.q1_pipeline(
            tpch, tpch.db.session("p3"), None, 0, 800, cutoff=1000)
        spread = router.q1_pipeline(
            tpch, tpch.db.session("p4"), tpch.db.session("c4"),
            0, 800, cutoff=1000)
        assert len(cohort.traces) == 1
        assert len(spread.traces) == 2

    def test_spread_consumer_rereads_batches(self):
        """The remote consumer's trace must reference the batch buffers the
        producer wrote; the cohort consumer's must not re-read them."""
        tpch = self._tpch()
        router = Router(tpch.db)
        spread = router.q1_pipeline(
            tpch, tpch.db.session("p5"), tpch.db.session("c5"),
            0, 800, cutoff=2600)
        producer_trace, consumer_trace = spread.traces
        written = {
            a >> 6 for a, f in zip(producer_trace.addrs, producer_trace.flags)
            if f & FLAG_WRITE
        }
        consumer_reads = {a >> 6 for a in consumer_trace.addrs}
        assert written & consumer_reads, "consumer never touched the batches"

    def test_packets_scale_with_batch_size(self):
        tpch = self._tpch()
        small = CohortScheduler(tpch.db, batch_bytes=1024)
        large = CohortScheduler(tpch.db, batch_bytes=8192)
        assert small.batch_rows * 8 == large.batch_rows

    def test_batch_bytes_validated(self):
        with pytest.raises(ValueError):
            CohortScheduler(Database(), batch_bytes=0)

    def test_router_stats_accumulate(self):
        tpch = self._tpch()
        router = Router(tpch.db)
        router.q1_pipeline(tpch, tpch.db.session("p6"), None, 0, 500,
                           cutoff=2600)
        assert router.stats["scan"].tuples_out == 500
        assert router.stats["filter"].tuples_in == 500
        assert router.stats["agg"].tuples_in == 500  # cutoff keeps all
