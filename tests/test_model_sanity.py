"""Sanity properties of the analytical model (ISSUE 5 satellite).

The pure-equation properties run on synthetic signatures (no
simulation): predicted CPI is monotonically non-decreasing in L2 hit
latency and in miss ratio, processor-sharing throughput never exceeds
``threads x single-thread IPC``, and the M/D/1 term degrades gracefully
as utilization approaches (and passes) 1.  A small simulator-backed
section checks that calibration reproduces its own pinned runs and that
a fitted model survives a JSON round trip bit-for-bit.
"""

import json
import math

import pytest

from repro.core.experiment import Experiment
from repro.model.analytical import (
    RHO_CAP,
    Signature,
    StallPoint,
    md1_wait,
    predict,
    processor_sharing_ipc,
    thread_cpi,
)
from repro.model.calibrate import CalibratedModel, config_for, fit
from repro.simulator.configs import fc_cmp, lc_cmp

SCALE = 0.01
CYCLES = 5_000


def make_sig(**over) -> Signature:
    """A plausible synthetic signature (fat OLTP-ish numbers)."""
    points = over.pop("points", (
        StallPoint(l2_nominal_mb=1.0, l2_fraction=0.05, mem_fraction=0.05,
                   alpha_i=0.01, alpha_l2=0.6, alpha_mem=0.8,
                   resid_cpi=0.05, queue_wait=0.1),
        StallPoint(l2_nominal_mb=26.0, l2_fraction=0.09, mem_fraction=0.01,
                   alpha_i=0.01, alpha_l2=0.6, alpha_mem=0.8,
                   resid_cpi=0.05, queue_wait=0.1),
    ))
    base = dict(kind="oltp", camp="fc", regime="saturated", n_contexts=1,
                comp_cpi=0.5, other_cpi=0.1, i_mem_cpi=0.02, apki=0.4,
                ipki_port=0.01, instructions=0, n_clients=64, points=points)
    base.update(over)
    return Signature(**base)


def lean_sig(**over) -> Signature:
    over.setdefault("camp", "lc")
    over.setdefault("n_contexts", 4)
    over.setdefault("n_clients", 16)
    return make_sig(**over)


class TestQueueingTerm:
    def test_idle_and_degenerate_inputs_cost_nothing(self):
        assert md1_wait(0.0, 2.0) == 0.0
        assert md1_wait(-1.0, 2.0) == 0.0
        assert md1_wait(0.5, 0.0) == 0.0
        assert md1_wait(0.5, -3.0) == 0.0

    def test_monotone_and_graceful_toward_saturation(self):
        """No division blow-up as rho -> 1: the wait saturates at the
        RHO_CAP clamp instead of diverging."""
        rhos = [0.1, 0.5, 0.9, 0.97, 0.999, 1.0, 1.5, 10.0]
        waits = [md1_wait(r, 2.0) for r in rhos]
        assert all(math.isfinite(w) and w >= 0.0 for w in waits)
        assert waits == sorted(waits)
        # Past the clamp every utilization costs the same finite wait.
        assert md1_wait(1.0, 2.0) == md1_wait(100.0, 2.0)
        assert md1_wait(1.0, 2.0) == md1_wait(RHO_CAP, 2.0)

    def test_saturated_fixed_point_self_throttles(self):
        """Elastic load (stalls fully exposed): the queue wait slows the
        cores, which drains the queue — the fixed point converges with
        utilization strictly below 1, never dividing by zero."""
        sig = make_sig(apki=10.0, points=(
            StallPoint(l2_nominal_mb=1.0, l2_fraction=0.9, mem_fraction=0.1,
                       alpha_i=0.05, alpha_l2=1.0, alpha_mem=1.0,
                       resid_cpi=0.0, queue_wait=0.0),
        ))
        config = fc_cmp(n_cores=8, l2_nominal_mb=1.0, scale=SCALE,
                        l2_banks=1)
        pred = predict(sig, config)
        assert math.isfinite(pred.ipc) and pred.ipc > 0.0
        assert math.isfinite(pred.queue_wait) and pred.queue_wait > 0.0
        assert 0.0 < pred.utilization < 1.0

    def test_inelastic_overload_hits_the_clamp_not_infinity(self):
        """Inelastic load (stalls fully hidden, so the wait cannot slow
        the cores): offered utilization exceeds 1 and the clamp — not a
        division blow-up — bounds the wait."""
        sig = make_sig(apki=10.0, points=(
            StallPoint(l2_nominal_mb=1.0, l2_fraction=0.9, mem_fraction=0.0,
                       alpha_i=0.0, alpha_l2=0.0, alpha_mem=0.0,
                       resid_cpi=0.0, queue_wait=0.0),
        ))
        config = fc_cmp(n_cores=8, l2_nominal_mb=1.0, scale=SCALE,
                        l2_banks=1)
        pred = predict(sig, config)
        service = float(config.hierarchy.l2_occupancy)
        assert pred.utilization > 1.0  # reported pre-clamp
        assert math.isfinite(pred.queue_wait)
        assert pred.queue_wait == pytest.approx(md1_wait(10.0, service))


class TestProcessorSharingBound:
    @pytest.mark.parametrize("k", [1, 2, 4, 8, 16])
    @pytest.mark.parametrize("work", [0.3, 0.5, 1.0])
    @pytest.mark.parametrize("stall", [0.0, 0.5, 2.0, 10.0])
    def test_never_exceeds_threads_times_single_thread_ipc(
            self, k, work, stall):
        ipc = processor_sharing_ipc(k, work, stall)
        single = 1.0 / (work + stall)
        assert ipc <= k * single + 1e-12
        assert ipc <= 1.0 / work + 1e-12  # the issue-rate cap
        assert ipc >= single - 1e-12      # threads never hurt

    def test_requires_positive_work(self):
        with pytest.raises(ValueError):
            processor_sharing_ipc(4, 0.0, 1.0)


class TestMonotonicity:
    def test_thread_cpi_non_decreasing_in_l2_latency(self):
        sig = make_sig()
        point = sig.at(4.0)
        cpis = [thread_cpi(sig, point, lat, 0.5, 300.0)
                for lat in (2, 4, 8, 14, 22, 40, 60)]
        assert cpis == sorted(cpis)
        assert cpis[-1] > cpis[0]  # strictly, when exposure is nonzero

    def test_thread_cpi_non_decreasing_in_miss_ratio(self):
        sig = make_sig()
        base = sig.at(4.0)
        cpis = []
        for mult in (0.0, 0.5, 1.0, 2.0, 4.0):
            point = StallPoint(
                l2_nominal_mb=base.l2_nominal_mb,
                l2_fraction=base.l2_fraction * mult,
                mem_fraction=base.mem_fraction * mult,
                alpha_i=base.alpha_i, alpha_l2=base.alpha_l2,
                alpha_mem=base.alpha_mem, resid_cpi=base.resid_cpi,
                queue_wait=base.queue_wait)
            cpis.append(thread_cpi(sig, point, 14.0, 0.5, 300.0))
        assert cpis == sorted(cpis)
        assert cpis[-1] > cpis[0]

    @pytest.mark.parametrize("builder,sig", [
        (fc_cmp, make_sig()),
        (lc_cmp, lean_sig()),
    ])
    def test_end_to_end_prediction_monotone_in_latency(self, builder, sig):
        """Through the queueing fixed point too: raising the (const) L2
        hit latency never lowers predicted CPI or raises throughput."""
        preds = [predict(sig, builder(n_cores=4, l2_nominal_mb=4.0,
                                      scale=SCALE, const_latency=lat))
                 for lat in (2, 4, 8, 16, 32)]
        cpis = [p.thread_cpi for p in preds]
        ipcs = [p.ipc for p in preds]
        assert cpis == sorted(cpis)
        assert ipcs == sorted(ipcs, reverse=True)

    def test_more_clients_never_lower_throughput(self):
        """Context placement: a half-empty lean chip cannot out-throughput
        the same chip with every context occupied."""
        config = lc_cmp(n_cores=8, l2_nominal_mb=4.0, scale=SCALE)
        ipcs = [predict(lean_sig(n_clients=c), config).ipc
                for c in (1, 4, 8, 16, 32, 64)]
        assert ipcs == sorted(ipcs)


@pytest.fixture(scope="module")
def fitted():
    exp = Experiment(scale=SCALE, measure_cycles=CYCLES, use_cache=False)
    return exp, fit(exp, kinds=("dss",))


@pytest.mark.slow
class TestCalibration:
    def test_reproduces_calibration_points(self, fitted):
        """The correction pins the model to its own calibration runs
        (small residue allowed: the queueing fixed point re-converges)."""
        exp, model = fitted
        for camp in ("fc", "lc"):
            for size in (1.0, 4.0, 26.0):
                config = config_for(camp, size, exp.scale)
                sim = exp.run(config, "dss", "saturated")
                pred = model.predict(config, "dss", "saturated")
                assert pred.ipc == pytest.approx(sim.ipc, rel=0.02)

    def test_json_round_trip_preserves_predictions(self, fitted):
        exp, model = fitted
        doc = json.loads(json.dumps(model.to_json_dict()))
        back = CalibratedModel.from_json_dict(doc)
        for camp in ("fc", "lc"):
            config = config_for(camp, 8.0, exp.scale)
            a = model.predict(config, "dss", "saturated")
            b = back.predict(config, "dss", "saturated")
            assert a == b

    def test_unknown_cell_fails_loudly(self, fitted):
        _, model = fitted
        with pytest.raises(ValueError, match="signature"):
            model.signature("oltp", "fc")  # only dss was fitted

    def test_bad_schema_rejected(self, fitted):
        _, model = fitted
        doc = model.to_json_dict()
        doc["schema"] = "repro-model-v999"
        with pytest.raises(ValueError, match="schema"):
            CalibratedModel.from_json_dict(doc)
