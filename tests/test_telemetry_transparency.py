"""Telemetry transparency: observing a sweep must never change it.

The observability layer (DESIGN.md §7) is read-only by contract: the
profiling probe consumes simulation outputs, the telemetry recorder
consumes scheduler lifecycle, and neither feeds anything back.  These
tests hold results **field-for-field identical** with telemetry on vs.
off — serially, across a process pool, under injected-fault chaos, and
across a checkpoint resume — and pin ``CODE_VERSION``: instrumentation
must not pretend to be a simulator change.
"""

import os
from dataclasses import fields

import pytest

from repro.core import parallel
from repro.core.parallel import RunSpec, execute, run_specs
from repro.simulator.configs import fc_cmp
from repro.simulator.profiling import NULL_PROBE, RunProbe

SCALE = 0.01
CYCLES = 5_000
SIZES_MB = (1.0, 2.0, 4.0)


def _specs(kind: str = "dss") -> list[RunSpec]:
    return [
        RunSpec(fc_cmp(n_cores=4, l2_nominal_mb=size, scale=SCALE), kind)
        for size in SIZES_MB
    ]


@pytest.fixture
def clean_env(monkeypatch):
    for var in ("REPRO_TELEMETRY", "REPRO_FAULTS", "REPRO_RETRIES",
                "REPRO_TIMEOUT", "REPRO_BACKOFF", "REPRO_FAIL_FAST",
                "REPRO_CHECKPOINT", "REPRO_JOBS", "REPRO_CACHE_DIR"):
        monkeypatch.delenv(var, raising=False)
    return monkeypatch


def _assert_identical(bare, observed) -> None:
    assert len(bare) == len(observed)
    for size, a, b in zip(SIZES_MB, bare, observed):
        for f in fields(a):
            assert getattr(a, f.name) == getattr(b, f.name), (
                f"telemetry changed field {f.name!r} at {size} MB")
        assert a == b


def test_code_version_unchanged_by_observability():
    # The cache salt invalidates every stored result when bumped; the
    # observability layer cannot alter results, so it must not bump it.
    assert parallel.CODE_VERSION == "repro-sim-v1"


def test_execute_identical_with_and_without_probe(clean_env):
    spec = _specs()[0]
    bare = execute(spec, SCALE, CYCLES)
    probe = RunProbe()
    observed = execute(spec, SCALE, CYCLES, probe=probe)
    assert bare == observed
    # The probe really watched the run it did not perturb.
    assert probe.counters["data_accesses"] == (
        observed.hier_stats.data_accesses)
    assert not NULL_PROBE.enabled


@pytest.mark.parametrize("jobs", [1, 2])
def test_sweep_identical_with_telemetry_on_and_off(clean_env, tmp_path, jobs):
    specs = _specs()
    bare = run_specs(specs, SCALE, CYCLES, jobs=jobs)
    observed = run_specs(specs, SCALE, CYCLES, jobs=jobs,
                         telemetry=str(tmp_path / "t.jsonl"))
    _assert_identical(bare, observed)


@pytest.mark.slow
def test_identical_under_fault_chaos(clean_env, tmp_path):
    """Retried attempts re-run the same deterministic path whether or not
    anyone is watching: faulted+observed == faulted+unobserved == clean."""
    specs = _specs()
    clean = run_specs(specs, SCALE, CYCLES, jobs=1)
    clean_env.setenv("REPRO_FAULTS", "exec@0;exec@2")  # first attempts fail
    faulted = run_specs(specs, SCALE, CYCLES, jobs=1, retries=2, backoff=0.0)
    observed = run_specs(specs, SCALE, CYCLES, jobs=1, retries=2,
                         backoff=0.0, telemetry=str(tmp_path / "t.jsonl"))
    _assert_identical(clean, faulted)
    _assert_identical(clean, observed)
    # The log shows the retries happened — observation was not a bypass.
    from repro.core.telemetry import load_events

    retried = {e["index"] for e in load_events(str(tmp_path / "t.jsonl"))
               if e["ev"] == "spec_retry"}
    assert retried == {0, 2}


@pytest.mark.slow
def test_identical_across_checkpoint_resume(clean_env, tmp_path):
    """A resumed sweep recalls checkpointed results; telemetry labels
    them (``checkpoint_resume``, source="checkpoint") without changing
    a single field."""
    from repro.core.telemetry import load_events

    specs = _specs()
    baseline = run_specs(specs, SCALE, CYCLES, jobs=1)
    journal = str(tmp_path / "sweep.ckpt")
    run_specs(specs[:2], SCALE, CYCLES, jobs=1, checkpoint=journal)

    log = str(tmp_path / "t.jsonl")
    resumed = run_specs(specs, SCALE, CYCLES, jobs=1, checkpoint=journal,
                        telemetry=log)
    _assert_identical(baseline, resumed)

    events = load_events(log)
    resumes = [e for e in events if e["ev"] == "checkpoint_resume"]
    assert len(resumes) == 1 and resumes[0]["recalled"] == 2
    by_source = {}
    for e in events:
        if e["ev"] == "spec_finished":
            by_source.setdefault(e["source"], set()).add(e["index"])
    assert by_source == {"checkpoint": {0, 1}, "simulated": {2}}
    # Recalled specs were never queued for execution.
    queued = {e["index"] for e in events if e["ev"] == "spec_queued"}
    assert queued == {2}


def test_env_telemetry_is_transparent_too(clean_env, tmp_path):
    """The ``REPRO_TELEMETRY`` knob (the CLI ``--telemetry`` path) is the
    same recorder; results stay identical and the log lands under DIR."""
    specs = _specs()[:2]
    bare = run_specs(specs, SCALE, CYCLES, jobs=1)
    clean_env.setenv("REPRO_TELEMETRY", str(tmp_path))
    observed = run_specs(specs, SCALE, CYCLES, jobs=1)
    assert bare == observed
    assert os.path.exists(tmp_path / "telemetry.jsonl")
