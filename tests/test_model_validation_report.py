"""Unit tests for the model-vs-simulator error report (pure, no sim)."""

import math

import pytest

from repro.core.validation import (
    ModelErrorRow,
    ModelValidationReport,
    format_model_validation,
)


def row(kind="oltp", camp="fc", size=2.0, predicted=1.0, measured=1.0):
    return ModelErrorRow(
        config_name=f"{camp}_cmp_{size:g}mb", kind=kind, camp=camp,
        regime="saturated", l2_nominal_mb=size,
        predicted=predicted, measured=measured)


class TestErrorRow:
    def test_signed_relative_error(self):
        assert row(predicted=1.1, measured=1.0).rel_error == \
            pytest.approx(0.1)
        assert row(predicted=0.8, measured=1.0).rel_error == \
            pytest.approx(-0.2)

    def test_zero_measured_guards(self):
        assert row(predicted=0.0, measured=0.0).rel_error == 0.0
        assert math.isinf(row(predicted=1.0, measured=0.0).rel_error)


class TestAggregates:
    def test_mae_and_max(self):
        report = ModelValidationReport(metric="throughput (IPC)", rows=[
            row(predicted=1.1, measured=1.0),   # +10%
            row(predicted=0.95, measured=1.0),  # -5%
            row(predicted=1.0, measured=1.0),   # 0%
        ])
        assert report.mae == pytest.approx(0.05)
        assert report.max_abs_error == pytest.approx(0.10)

    def test_bound_verdict(self):
        good = ModelValidationReport(metric="m", bound=0.15,
                                     rows=[row(predicted=1.1, measured=1.0)])
        bad = ModelValidationReport(metric="m", bound=0.05,
                                    rows=[row(predicted=1.1, measured=1.0)])
        assert good.within_bound and not bad.within_bound

    def test_empty_report_is_trivially_clean(self):
        report = ModelValidationReport(metric="m")
        assert report.mae == 0.0
        assert report.max_abs_error == 0.0
        assert report.within_bound

    def test_grouped_mae(self):
        report = ModelValidationReport(metric="m", rows=[
            row(kind="oltp", predicted=1.1, measured=1.0),
            row(kind="oltp", predicted=0.9, measured=1.0),
            row(kind="dss", predicted=1.0, measured=1.0),
        ])
        by_kind = report.by_group(lambda r: r.kind)
        assert by_kind["oltp"] == pytest.approx(0.1)
        assert by_kind["dss"] == 0.0


class TestFormatting:
    def test_table_carries_rows_and_verdict(self):
        report = ModelValidationReport(metric="throughput (IPC)", rows=[
            row(kind="dss", camp="lc", size=8.0,
                predicted=2.2, measured=2.0),
        ])
        text = format_model_validation(report)
        assert "lc_cmp_8mb" in text
        assert "+10.0%" in text
        assert "PASS" in text

    def test_fail_verdict_when_over_bound(self):
        report = ModelValidationReport(metric="m", bound=0.05, rows=[
            row(predicted=1.5, measured=1.0),
        ])
        assert "FAIL" in format_model_validation(report)
